"""Tests for the feedback-driven scheduler (``repro.dynamics.adaptive``).

The two load-bearing contracts:

* **Determinism** — replay-time decisions are a pure function of
  (trace, policy, seed): the same run is bit-identical across repeats and
  across worker processes (``jobs=4``), which is what lets adaptive results
  live in the content-addressed :class:`~repro.sim.runner.ResultStore`.
* **Fixed is a no-op** — ``scheduler=fixed`` (or no scheduler at all)
  replays through exactly the pre-adaptive code path, bit for bit, so the
  adaptive subsystem is a strict extension of the dynamics pipeline.
"""

from __future__ import annotations

import pytest

from repro.dynamics.adaptive import (
    DEFAULT_WINDOW_RECORDS,
    SCHEDULERS,
    AdaptiveScheduler,
    GreedyRebalancePolicy,
    MigrationDecision,
    ReinforcedCounterPolicy,
    WindowPressure,
    build_scheduler,
)
from repro.dynamics.scenarios import resolve_dynamic
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import simulate_workload
from repro.sim.runner import BatchRunner, ExperimentGrid

from .conftest import TEST_SCALE

RECORDS = 6000


def _window(pressure, thread_counts, thread_core, index=0):
    return WindowPressure(
        index=index,
        pressure=tuple(pressure),
        thread_counts=dict(thread_counts),
        thread_core=dict(thread_core),
    )


# --------------------------------------------------------------------- #
# WindowPressure arithmetic
# --------------------------------------------------------------------- #
class TestWindowPressure:
    def test_imbalance_zero_when_balanced(self):
        window = _window([5, 5, 5, 5], {}, {})
        assert window.imbalance == 0.0

    def test_imbalance_peak_over_mean(self):
        # mean = 5, max = 10 -> 10/5 - 1 = 1.0
        window = _window([10, 0, 5, 5], {}, {})
        assert window.imbalance == pytest.approx(1.0)

    def test_imbalance_idle_window_is_zero(self):
        assert _window([0, 0], {}, {}).imbalance == 0.0

    def test_hottest_core_breaks_ties_low(self):
        assert _window([7, 7, 3], {}, {}).hottest_core() == 0

    def test_threads_on_ranks_hottest_first_then_low_id(self):
        window = _window(
            [10, 0],
            {3: 4, 1: 4, 2: 2},
            {3: 0, 1: 0, 2: 0},
        )
        assert window.threads_on(0) == [(4, 1), (4, 3), (2, 2)]


# --------------------------------------------------------------------- #
# Policies
# --------------------------------------------------------------------- #
class TestGreedyPolicy:
    def test_no_decision_below_threshold(self):
        policy = GreedyRebalancePolicy(threshold=0.5)
        policy.reset()
        window = _window([6, 5, 5, 4], {0: 6}, {0: 0})
        assert policy.decide(window) == []

    def test_moves_hottest_thread_to_coolest_core(self):
        policy = GreedyRebalancePolicy(threshold=0.25)
        policy.reset()
        window = _window(
            [10, 2, 0, 0],
            {0: 6, 4: 4, 1: 2},
            {0: 0, 4: 0, 1: 1},
        )
        (decision,) = policy.decide(window)
        assert decision.thread_id == 0  # hottest thread on the hottest core
        assert decision.to_core in (2, 3)  # tied coolest cores: seeded pick
        # The pick is reproducible: a fresh policy with the same seed agrees.
        fresh = GreedyRebalancePolicy(threshold=0.25)
        fresh.reset()
        assert fresh.decide(window) == [decision]

    def test_single_thread_core_is_not_shuffled(self):
        """Moving a lone thread just relocates the peak: the improvement
        guard must refuse."""
        policy = GreedyRebalancePolicy(threshold=0.25)
        policy.reset()
        window = _window([10, 1, 1, 0], {0: 10, 1: 1, 2: 1}, {0: 0, 1: 1, 2: 2})
        assert policy.decide(window) == []

    def test_idle_trace_makes_no_decisions(self):
        policy = GreedyRebalancePolicy()
        policy.reset()
        assert policy.decide(_window([0, 0], {}, {})) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyRebalancePolicy(threshold=-0.1)


class TestReinforcedPolicy:
    def test_patience_delays_the_move(self):
        policy = ReinforcedCounterPolicy(threshold=0.25, patience=2, explore=0.0)
        policy.reset()
        window = _window(
            [10, 0, 0, 0],
            {0: 6, 1: 4},
            {0: 0, 1: 0},
        )
        assert policy.decide(window) == []  # credit 1 < patience
        (decision,) = policy.decide(window)  # credit 2 -> move
        assert decision.thread_id == 0
        assert decision.to_core in (1, 2, 3)

    def test_credit_decays_when_balance_returns(self):
        policy = ReinforcedCounterPolicy(threshold=0.25, patience=2, explore=0.0)
        policy.reset()
        hot = _window([10, 0], {0: 6, 1: 4}, {0: 0, 1: 0})
        balanced = _window([5, 5], {0: 5, 1: 5}, {0: 0, 1: 1})
        assert policy.decide(hot) == []
        for _ in range(12):  # decay the credit away
            assert policy.decide(balanced) == []
        assert policy.decide(hot) == []  # back to square one: no move yet

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ReinforcedCounterPolicy(patience=0)
        with pytest.raises(ConfigurationError):
            ReinforcedCounterPolicy(decay=1.0)
        with pytest.raises(ConfigurationError):
            ReinforcedCounterPolicy(explore=1.0)


# --------------------------------------------------------------------- #
# AdaptiveScheduler controller
# --------------------------------------------------------------------- #
class TestAdaptiveScheduler:
    def test_observe_builds_pressure_and_records_imbalance(self):
        scheduler = AdaptiveScheduler(GreedyRebalancePolicy(threshold=0.25))
        scheduler.begin_run(4)
        decisions = scheduler.observe({0: 6, 4: 4}, {0: 0, 4: 0})
        assert scheduler.imbalance_series == [pytest.approx(3.0)]
        (decision,) = decisions
        assert decision.thread_id == 0
        scheduler.record_applied(decision.thread_id, 0, decision.to_core)
        assert scheduler.migrations_applied == 1

    def test_begin_run_resets_everything(self):
        scheduler = AdaptiveScheduler(GreedyRebalancePolicy())
        scheduler.begin_run(2)
        scheduler.observe({0: 5}, {0: 0})
        scheduler.record_applied(0, 0, 1)
        scheduler.begin_run(2)
        assert scheduler.imbalance_series == []
        assert scheduler.applied == []

    def test_non_moves_are_filtered(self):
        class Stubborn(GreedyRebalancePolicy):
            def decide(self, window):
                return [MigrationDecision(thread_id=0, to_core=0)]

        scheduler = AdaptiveScheduler(Stubborn())
        scheduler.begin_run(2)
        assert scheduler.observe({0: 5}, {0: 0}) == []

    def test_out_of_range_target_raises(self):
        class Rogue(GreedyRebalancePolicy):
            def decide(self, window):
                return [MigrationDecision(thread_id=0, to_core=99)]

        scheduler = AdaptiveScheduler(Rogue())
        scheduler.begin_run(2)
        with pytest.raises(ConfigurationError):
            scheduler.observe({0: 5}, {0: 0})

    def test_window_records_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AdaptiveScheduler(GreedyRebalancePolicy(), window_records=0)

    def test_build_scheduler_names(self):
        assert build_scheduler("fixed") is None
        assert build_scheduler("greedy").name == "greedy"
        assert build_scheduler("reinforced").name == "reinforced"
        assert build_scheduler("greedy").window_records == DEFAULT_WINDOW_RECORDS
        with pytest.raises(ConfigurationError, match="known schedulers"):
            build_scheduler("oracle")
        assert set(SCHEDULERS) == {"fixed", "greedy", "reinforced"}


# --------------------------------------------------------------------- #
# End-to-end determinism and the fixed no-op contract
# --------------------------------------------------------------------- #
class TestAdaptiveReplay:
    def _run(self, scheduler, *, workload="mix:adaptive", seed=5, **kwargs):
        return simulate_workload(
            workload, "R", num_records=RECORDS, scale=TEST_SCALE, seed=seed,
            scheduler=scheduler, **kwargs,
        )

    @pytest.mark.parametrize("name", ("greedy", "reinforced"))
    def test_same_seed_same_scheduler_is_bit_identical(self, name):
        first = self._run(name)
        second = self._run(name)
        assert first.stats.to_dict() == second.stats.to_dict()
        assert first.cpi == second.cpi
        assert first.metadata == second.metadata

    def test_fixed_name_is_a_noop_vs_no_scheduler(self):
        """``scheduler="fixed"`` replays through the pre-adaptive path."""
        plain = self._run(None, workload="mix:phased")
        fixed = self._run("fixed", workload="mix:phased")
        assert plain.stats.to_dict() == fixed.stats.to_dict()
        assert "scheduler" not in fixed.metadata

    def test_greedy_actually_migrates_and_rebalances(self):
        result = self._run("greedy")
        stats = result.stats
        assert stats.adaptive_migrations > 0
        assert result.metadata["scheduler"] == "greedy"
        assert result.metadata["adaptive_migrations"] == stats.adaptive_migrations
        # The packed launch placement is visibly imbalanced at first and
        # visibly repaired by the end.
        assert stats.window_imbalance[0] > 0.5
        assert stats.window_imbalance[-1] < stats.window_imbalance[0] / 2
        # Replay-time moves are charged through the OS machinery.
        assert stats.migration_reowns > 0
        # Trace events are still what the trace says (no generation-time
        # migrations in the :adaptive scenarios).
        assert stats.thread_migrations == 0

    def test_adaptive_works_on_static_traces_too(self):
        result = self._run("greedy", workload="mix")
        # A balanced static workload never crosses the threshold ...
        assert result.stats.adaptive_migrations == 0
        # ... and the imbalance series is still observed.
        assert len(result.stats.window_imbalance) > 0
        # Static traces gain no phantom phase rows from the adaptive path.
        assert result.stats.phases == {}

    def test_window_series_covers_every_full_window(self):
        """A trace ending exactly on a window boundary loses no windows."""
        scheduler = AdaptiveScheduler(
            GreedyRebalancePolicy(seed=5), window_records=500
        )
        result = self._run(scheduler)
        assert len(result.stats.window_imbalance) == RECORDS // 500

    def test_trace_migration_event_invalidates_adaptive_override(self, config8):
        """A generation-time migration re-places the thread; a stale
        adaptive override must not silently cancel it."""
        from repro.dynamics.generator import generate_dynamic_trace
        from repro.dynamics.spec import (
            DynamicWorkloadSpec,
            MigrationEvent,
            MigrationSchedule,
        )
        from repro.sim.engine import TraceSimulator
        from repro.sim.latency import CpiModel
        from repro.cmp.chip import TiledChip
        from repro.designs import build_design
        from repro.workloads.spec import get_workload
        from repro.dynamics.adaptive import SchedulingPolicy

        class Scripted(SchedulingPolicy):
            """Moves thread 0 to core 3 at window 0, then just records."""

            name = "scripted"

            def __init__(self):
                self.seen = []

            def reset(self):
                self.seen = []

            def decide(self, window):
                self.seen.append(dict(window.thread_core))
                if window.index == 0:
                    return [MigrationDecision(thread_id=0, to_core=3)]
                return []

        base = get_workload("mix")
        dyn = DynamicWorkloadSpec(
            name="mix:event-vs-override",
            base=base,
            schedule=MigrationSchedule(
                migrations=(MigrationEvent(at=0.5, thread_id=0, to_core=5),)
            ),
        )
        trace = generate_dynamic_trace(dyn, config8, 8000, seed=2, scale=TEST_SCALE)
        policy = Scripted()
        simulator = TraceSimulator(
            build_design("R", TiledChip(config8)),
            CpiModel.for_workload(base),
            scheduler=AdaptiveScheduler(policy, window_records=500),
        )
        simulator.run(trace)
        # Before the scheduled migration the adaptive override holds ...
        assert policy.seen[2][0] == 3
        # ... and the trace's own migration (record 4000 -> core 5) then
        # wins: the override is dropped, not left to shadow the schedule.
        assert policy.seen[-1][0] == 5

    def test_stats_round_trip_preserves_adaptive_fields(self):
        from repro.sim.stats import SimulationStats

        stats = self._run("greedy").stats
        clone = SimulationStats.from_dict(stats.to_dict())
        assert clone.adaptive_migrations == stats.adaptive_migrations
        assert clone.window_imbalance == stats.window_imbalance
        assert clone.to_dict() == stats.to_dict()

    def test_reference_engine_rejects_schedulers(self):
        with pytest.raises(SimulationError, match="feedback-capable engine"):
            self._run("greedy", workload="mix", engine="reference")

    def test_explicit_scheduler_object_is_accepted(self):
        scheduler = AdaptiveScheduler(
            GreedyRebalancePolicy(seed=5), window_records=500
        )
        by_object = self._run(scheduler)
        assert by_object.metadata["scheduler"] == "greedy"
        # Twice the windows of the default 1000-record cadence.
        by_name = self._run("greedy")
        assert len(by_object.stats.window_imbalance) == pytest.approx(
            2 * len(by_name.stats.window_imbalance), abs=2
        )


# --------------------------------------------------------------------- #
# Runner integration: the scheduler axis is deterministic across jobs
# --------------------------------------------------------------------- #
class TestSchedulerGridAxis:
    GRID = dict(
        workloads=("mix:adaptive",),
        designs=("R",),
        num_records=4000,
        scale=TEST_SCALE,
        seed=5,
        schedulers=("fixed", "greedy"),
    )

    def test_grid_enumerates_scheduler_axis(self):
        grid = ExperimentGrid(**self.GRID)
        points = grid.points()
        assert len(points) == len(grid) == 2
        params = sorted(point.param_dict.get("scheduler", "fixed") for point in points)
        assert params == ["fixed", "greedy"]
        # "fixed" carries no parameter: its content hash equals the plain
        # point's, so pre-existing cached results keep serving it.
        plain = ExperimentGrid(**{**self.GRID, "schedulers": ()}).points()
        assert points[0].content_hash == plain[0].content_hash

    def test_scheduler_axis_keeps_asr_best_of_six(self):
        """The replay-time axis is orthogonal to design parameters: an ASR
        point with a scheduler still runs the paper's best-of-six
        selection, so the scheduler comparison compares like with like."""
        from repro.sim.runner import ExperimentPoint, execute_point

        point = ExperimentPoint.make(
            "mix:adaptive", "A", num_records=1500, scale=TEST_SCALE, seed=5,
            params={"scheduler": "greedy"},
        )
        result = execute_point(point)
        assert result.metadata["asr_variants_evaluated"] == 6
        assert result.metadata["scheduler"] == "greedy"

    def test_unknown_scheduler_rejected_at_grid_time(self):
        with pytest.raises(SimulationError, match="known schedulers"):
            ExperimentGrid(**{**self.GRID, "schedulers": ("oracle",)})

    def test_bit_identical_across_jobs(self, tmp_path):
        """jobs=1 and jobs=4 produce the same bytes for every point."""
        grid = ExperimentGrid(**self.GRID)
        serial = BatchRunner(jobs=1).run(grid.points())
        parallel = BatchRunner(jobs=4).run(grid.points())
        assert serial.executed == parallel.executed == 2
        for point in grid.points():
            a = serial.result_for(point)
            b = parallel.result_for(point)
            assert a.stats.to_dict() == b.stats.to_dict(), point.label
            assert a.to_dict() == b.to_dict(), point.label


# --------------------------------------------------------------------- #
# The :adaptive scenario family
# --------------------------------------------------------------------- #
class TestAdaptiveScenario:
    def test_packed_initial_assignment(self):
        dyn = resolve_dynamic("mix:adaptive")
        cores = len(dyn.initial_assignment)
        assert dyn.initial_assignment == tuple(t // 2 for t in range(cores))
        assert not dyn.is_static_equivalent

    def test_trace_metadata_carries_the_assignment(self, config8):
        from repro.dynamics.generator import generate_dynamic_trace

        dyn = resolve_dynamic("mix:adaptive")
        trace = generate_dynamic_trace(dyn, config8, 1000, seed=1, scale=TEST_SCALE)
        assert trace.metadata["initial_assignment"] == list(dyn.initial_assignment)
        # Only the packed half of the machine issues accesses at launch.
        assert set(trace.columns.core.tolist()) <= set(dyn.initial_assignment)

    def test_assignment_length_validated(self, config8):
        from dataclasses import replace

        from repro.dynamics.generator import DynamicTraceGenerator
        from repro.errors import TraceError

        dyn = replace(resolve_dynamic("mix:adaptive"), initial_assignment=(0, 1))
        with pytest.raises(TraceError, match="initial assignment"):
            DynamicTraceGenerator(dyn, config8, seed=1, scale=TEST_SCALE)

    def test_assignment_core_range_validated(self, config8):
        from dataclasses import replace

        from repro.dynamics.generator import DynamicTraceGenerator
        from repro.errors import TraceError

        cores = config8.num_tiles
        dyn = replace(
            resolve_dynamic("mix:adaptive"),
            initial_assignment=tuple([cores + 7] * cores),
        )
        with pytest.raises(TraceError, match="exceeds"):
            DynamicTraceGenerator(dyn, config8, seed=1, scale=TEST_SCALE)

    def test_negative_core_rejected_by_spec(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(resolve_dynamic("mix:adaptive"), initial_assignment=(-1, 0))
