"""The ``repro.check`` lint pass: rules, fixtures, markers, CLI exit codes.

The committed snippets under ``tests/fixtures/check/`` are the contract:
every ``bad_*.py`` file must produce at least one finding for the rule it
names (and drive ``repro check <file>`` to a non-zero exit), and every
``good_*.py`` file must be clean under *all* rules — fixtures are checked
in snippet mode, where scoping does not apply.
"""

from __future__ import annotations

import contextlib
import io
from pathlib import Path

import pytest

from repro.check import RULES, check_paths
from repro.check.lints import check_source, load_source
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "check"

#: bad fixture -> the rule it must trip.
BAD_FIXTURES = {
    "bad_unseeded_random.py": "determinism-unseeded-random",
    "bad_wall_clock.py": "determinism-wall-clock",
    "bad_env_read.py": "knobs-env-registry",
    "bad_broad_except.py": "no-broad-except",
    "bad_mutable_default.py": "no-mutable-default",
    "bad_hash_coverage.py": "hash-coverage",
    "bad_untyped_defs.py": "typed-defs",
    "bad_unbounded_future_result.py": "no-unbounded-future-result",
}

GOOD_FIXTURES = (
    "good_seeded_random.py",
    "good_duration_clock.py",
    "good_env_registry.py",
    "good_broad_except.py",
    "good_mutable_default.py",
    "good_hash_coverage.py",
    "good_typed_defs.py",
    "good_bounded_future_result.py",
)


def test_fixture_sets_cover_every_rule():
    """One bad fixture per registered rule; no stale fixture files."""
    assert set(BAD_FIXTURES.values()) == set(RULES)
    on_disk = {path.name for path in FIXTURES.glob("*.py")}
    assert on_disk == set(BAD_FIXTURES) | set(GOOD_FIXTURES)


@pytest.mark.parametrize("fixture,rule", sorted(BAD_FIXTURES.items()))
def test_bad_fixture_trips_its_rule(fixture, rule):
    findings = check_paths([FIXTURES / fixture])
    assert findings, f"{fixture} produced no findings"
    assert {finding.rule for finding in findings} == {rule}


@pytest.mark.parametrize("fixture", GOOD_FIXTURES)
def test_good_fixture_is_clean_under_every_rule(fixture):
    findings = check_paths([FIXTURES / fixture])
    assert findings == [], [finding.format() for finding in findings]


def test_repo_package_is_clean():
    """The installed package itself passes every lint (the CI gate)."""
    findings = check_paths()
    assert findings == [], "\n".join(finding.format() for finding in findings)


# ---------------------------------------------------------------------- #
# Rule mechanics
# ---------------------------------------------------------------------- #
def _check_snippet(tmp_path: Path, text: str) -> list[str]:
    path = tmp_path / "snippet.py"
    path.write_text(text)
    return [finding.rule for finding in check_source(load_source(path))]


def test_empty_suppression_reason_does_not_suppress(tmp_path):
    rules = _check_snippet(
        tmp_path,
        "import time\n\n\n"
        "def stamp() -> float:\n"
        "    return time.time()  # repro: allow-wall-clock()\n",
    )
    assert "determinism-wall-clock" in rules


def test_marker_on_preceding_line_suppresses(tmp_path):
    rules = _check_snippet(
        tmp_path,
        "import time\n\n\n"
        "def stamp() -> float:\n"
        "    # repro: allow-wall-clock(report metadata only)\n"
        "    return time.time()\n",
    )
    assert rules == []


def test_marker_two_lines_up_does_not_suppress(tmp_path):
    """Markers cover the same line or the one above — never farther."""
    rules = _check_snippet(
        tmp_path,
        "import time\n\n\n"
        "def stamp() -> float:\n"
        "    # repro: allow-wall-clock(too far away)\n"
        "    # an intervening comment breaks the association\n"
        "    return time.time()\n",
    )
    assert "determinism-wall-clock" in rules


def test_hash_coverage_accepts_asdict_style(tmp_path):
    """A non-literal to_dict (asdict) covers every field by construction."""
    rules = _check_snippet(
        tmp_path,
        "import dataclasses\n"
        "import hashlib\n"
        "import json\n"
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class Key:\n"
        "    workload: str\n"
        "    extra: str\n\n"
        "    def to_dict(self) -> dict[str, object]:\n"
        "        return dataclasses.asdict(self)\n\n"
        "    def content_hash(self) -> str:\n"
        "        payload = json.dumps(self.to_dict(), sort_keys=True)\n"
        "        return hashlib.sha256(payload.encode()).hexdigest()\n",
    )
    assert rules == []


def test_hash_coverage_regression_new_field_must_be_hashed(tmp_path):
    """The store regression: a dataclass gains a field, to_dict lags."""
    covered = (
        "import hashlib\n"
        "import json\n"
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class Key:\n"
        "    workload: str\n"
        "{field}"
        "\n"
        "    def to_dict(self) -> dict[str, object]:\n"
        "        return {{'workload': self.workload}}\n\n"
        "    def content_hash(self) -> str:\n"
        "        payload = json.dumps(self.to_dict(), sort_keys=True)\n"
        "        return hashlib.sha256(payload.encode()).hexdigest()\n"
    )
    assert _check_snippet(tmp_path, covered.format(field="")) == []
    rules = _check_snippet(tmp_path, covered.format(field="    scale: int = 1\n"))
    assert rules == ["hash-coverage"]


def test_hash_coverage_regression_policy_axis_must_be_hashed(tmp_path):
    """The sweep-axis regression: a grid point grows an ``l2_policy``
    parameter but the content hash keeps keying on the old fields, so an
    ``arc`` run would silently reuse the cached ``lru`` result."""
    snippet = (
        "import hashlib\n"
        "import json\n"
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class Point:\n"
        "    workload: str\n"
        "    design: str\n"
        "    l2_policy: str = 'lru'\n"
        "\n"
        "    def to_dict(self) -> dict[str, object]:\n"
        "        return {{'workload': self.workload, 'design': self.design{policy}}}\n\n"
        "    def content_hash(self) -> str:\n"
        "        payload = json.dumps(self.to_dict(), sort_keys=True)\n"
        "        return hashlib.sha256(payload.encode()).hexdigest()\n"
    )
    assert _check_snippet(tmp_path, snippet.format(policy="")) == ["hash-coverage"]
    covered = snippet.format(policy=", 'l2_policy': self.l2_policy")
    assert _check_snippet(tmp_path, covered) == []


def test_parse_error_becomes_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    findings = check_paths([path])
    assert [finding.rule for finding in findings] == ["parse"]


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
def _run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


@pytest.mark.parametrize("fixture", sorted(BAD_FIXTURES))
def test_cli_exits_nonzero_per_bad_fixture(fixture):
    code, out = _run_cli("check", "--no-mypy", str(FIXTURES / fixture))
    assert code == 1
    assert BAD_FIXTURES[fixture] in out


def test_cli_exits_zero_on_clean_paths():
    code, out = _run_cli(
        "check", "--no-mypy", *(str(FIXTURES / name) for name in GOOD_FIXTURES)
    )
    assert code == 0
    assert "Lints: clean" in out


def test_cli_rules_listing_names_every_rule():
    code, out = _run_cli("check", "--rules")
    assert code == 0
    for name in RULES:
        assert name in out


def test_cli_runs_typing_gate_by_default():
    """Without --no-mypy the gate line appears (passed or skipped)."""
    code, out = _run_cli("check", str(FIXTURES / "good_typed_defs.py"))
    assert code == 0
    assert "Typing gate [" in out
