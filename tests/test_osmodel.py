"""Tests for the OS model: page table, TLB, classifier, scheduler."""

import pytest

from repro.errors import ClassificationError, ConfigurationError
from repro.osmodel.classifier import ClassificationEvent, PageClassifier
from repro.osmodel.page_table import PageClass, PageTable, PageTableEntry
from repro.osmodel.scheduler import ThreadScheduler
from repro.osmodel.tlb import Tlb, TlbEntry


class TestPageTable:
    def test_get_or_create(self):
        table = PageTable()
        entry = table.get_or_create(5)
        assert entry.page_number == 5
        assert table.get_or_create(5) is entry
        assert len(table) == 1

    def test_default_entry_is_private(self):
        entry = PageTableEntry(page_number=1)
        assert entry.page_class is PageClass.PRIVATE
        assert entry.private

    def test_mark_shared_clears_private_bit(self):
        entry = PageTableEntry(page_number=1)
        entry.mark_private(3)
        entry.mark_shared()
        assert entry.page_class is PageClass.SHARED
        assert not entry.private
        assert entry.owner_cid is None

    def test_instruction_page_cannot_become_shared(self):
        entry = PageTableEntry(page_number=1)
        entry.mark_instruction()
        with pytest.raises(ClassificationError):
            entry.mark_shared()

    def test_pages_of_class(self):
        table = PageTable()
        table.get_or_create(1).mark_shared()
        table.get_or_create(2).mark_private(0)
        assert [e.page_number for e in table.pages_of_class(PageClass.SHARED)] == [1]


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(core_id=0, entries=4)
        assert tlb.lookup(7) is None
        tlb.fill(TlbEntry(page_number=7, page_class=PageClass.PRIVATE, private=True))
        assert tlb.lookup(7) is not None
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_replacement(self):
        tlb = Tlb(core_id=0, entries=2)
        for page in (1, 2):
            tlb.fill(TlbEntry(page_number=page, page_class=PageClass.SHARED, private=False))
        tlb.lookup(1)
        tlb.fill(TlbEntry(page_number=3, page_class=PageClass.SHARED, private=False))
        assert 1 in tlb and 3 in tlb and 2 not in tlb

    def test_shootdown(self):
        tlb = Tlb(core_id=0, entries=4)
        tlb.fill(TlbEntry(page_number=9, page_class=PageClass.PRIVATE, private=True))
        assert tlb.shootdown(9)
        assert not tlb.shootdown(9)
        assert tlb.shootdowns == 1

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            Tlb(core_id=0, entries=0)

    def test_miss_rate(self):
        tlb = Tlb(core_id=0, entries=4)
        tlb.lookup(1)
        tlb.fill(TlbEntry(page_number=1, page_class=PageClass.SHARED, private=False))
        tlb.lookup(1)
        assert tlb.miss_rate == pytest.approx(0.5)


class TestScheduler:
    def test_default_mapping_is_identity_modulo_cores(self):
        scheduler = ThreadScheduler(num_cores=4)
        assert scheduler.core_of(2) == 2
        assert scheduler.core_of(6) == 2

    def test_schedule_and_migrate(self):
        scheduler = ThreadScheduler(num_cores=4)
        scheduler.schedule(thread_id=1, core_id=3)
        record = scheduler.migrate(thread_id=1, to_core=0)
        assert record.from_core == 3 and record.to_core == 0
        assert scheduler.core_of(1) == 0
        assert scheduler.recently_migrated(1)
        assert not scheduler.recently_migrated(2)

    def test_invalid_core_rejected(self):
        scheduler = ThreadScheduler(num_cores=4)
        with pytest.raises(ConfigurationError):
            scheduler.schedule(thread_id=0, core_id=9)


class TestSchedulerMigrationWindow:
    """Window semantics of :meth:`ThreadScheduler.recently_migrated`."""

    def test_never_migrated_thread_is_never_recent(self):
        scheduler = ThreadScheduler(num_cores=4)
        assert not scheduler.recently_migrated(0)
        scheduler.migrate(thread_id=1, to_core=2)
        assert not scheduler.recently_migrated(0)

    def test_default_window_is_forever(self):
        scheduler = ThreadScheduler(num_cores=4)
        scheduler.migrate(thread_id=1, to_core=2)
        for other in range(20):
            scheduler.migrate(thread_id=2, to_core=other % 4)
        assert scheduler.recently_migrated(1)

    def test_bounded_window_expires(self):
        scheduler = ThreadScheduler(num_cores=4, migration_window=2)
        scheduler.migrate(thread_id=1, to_core=2)
        assert scheduler.recently_migrated(1)
        scheduler.migrate(thread_id=2, to_core=3)
        scheduler.migrate(thread_id=3, to_core=0)
        # Two further migrations: thread 1's move is exactly at the window edge.
        assert scheduler.recently_migrated(1)
        scheduler.migrate(thread_id=2, to_core=1)
        assert not scheduler.recently_migrated(1)

    def test_zero_window_means_only_the_last_migration(self):
        scheduler = ThreadScheduler(num_cores=4, migration_window=0)
        scheduler.migrate(thread_id=1, to_core=2)
        assert scheduler.recently_migrated(1)
        scheduler.migrate(thread_id=2, to_core=3)
        assert scheduler.recently_migrated(2)
        assert not scheduler.recently_migrated(1)

    def test_remigration_refreshes_the_window(self):
        scheduler = ThreadScheduler(num_cores=4, migration_window=1)
        scheduler.migrate(thread_id=1, to_core=2)
        scheduler.migrate(thread_id=2, to_core=3)
        scheduler.migrate(thread_id=1, to_core=3)  # refreshes thread 1
        scheduler.migrate(thread_id=2, to_core=0)
        assert scheduler.recently_migrated(1)

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadScheduler(num_cores=4, migration_window=-1)

    def test_migrated_from_matches_only_the_origin_core(self):
        scheduler = ThreadScheduler(num_cores=4)
        scheduler.schedule(thread_id=7, core_id=1)
        scheduler.migrate(thread_id=7, to_core=2)
        assert scheduler.migrated_from(7, 1)
        assert not scheduler.migrated_from(7, 0)  # never ran there
        assert not scheduler.migrated_from(5, 1)  # different thread
        assert not scheduler.migrated_from(7, None)  # ownerless page

    def test_migrated_from_follows_chained_migrations(self):
        scheduler = ThreadScheduler(num_cores=4)
        scheduler.schedule(thread_id=7, core_id=0)
        scheduler.migrate(thread_id=7, to_core=1)
        scheduler.migrate(thread_id=7, to_core=2)
        # Pages owned at either earlier stop are still reownable.
        assert scheduler.migrated_from(7, 0)
        assert scheduler.migrated_from(7, 1)

    def test_migrated_from_respects_the_window(self):
        scheduler = ThreadScheduler(num_cores=4, migration_window=0)
        scheduler.schedule(thread_id=7, core_id=0)
        scheduler.migrate(thread_id=7, to_core=1)
        assert scheduler.migrated_from(7, 0)
        scheduler.migrate(thread_id=2, to_core=3)
        assert not scheduler.migrated_from(7, 0)


class TestPageClassifier:
    def test_instruction_accesses_classified_immediately(self):
        classifier = PageClassifier(num_cores=4)
        page_class, event = classifier.classify_access(0, 10, instruction=True)
        assert page_class is PageClass.INSTRUCTION
        assert event.kind == ClassificationEvent.INSTRUCTION
        assert classifier.classification_of(10) is PageClass.INSTRUCTION

    def test_first_data_touch_is_private(self):
        classifier = PageClassifier(num_cores=4)
        page_class, event = classifier.classify_access(2, 11, instruction=False)
        assert page_class is PageClass.PRIVATE
        assert event.kind == ClassificationEvent.FIRST_TOUCH
        assert classifier.page_table.lookup(11).owner_cid == 2

    def test_same_core_reaccess_stays_private(self):
        classifier = PageClassifier(num_cores=4)
        classifier.classify_access(2, 11, instruction=False)
        page_class, event = classifier.classify_access(2, 11, instruction=False)
        assert page_class is PageClass.PRIVATE
        assert event.kind == ClassificationEvent.TLB_HIT

    def test_second_core_triggers_reclassification_to_shared(self):
        classifier = PageClassifier(num_cores=4)
        shootdowns = []
        classifier.classify_access(0, 20, instruction=False)
        page_class, event = classifier.classify_access(
            1, 20, instruction=False,
            shootdown=lambda page, owner: shootdowns.append((page, owner)) or 3,
        )
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.RECLASSIFY_TO_SHARED
        assert event.shootdown_blocks == 3
        assert shootdowns == [(20, 0)]
        assert classifier.reclassifications == 1
        entry = classifier.page_table.lookup(20)
        assert entry.page_class is PageClass.SHARED
        assert not entry.poisoned

    def test_reclassification_shoots_down_all_tlbs(self):
        classifier = PageClassifier(num_cores=4)
        classifier.classify_access(0, 21, instruction=False)
        classifier.classify_access(1, 21, instruction=False)
        # Core 0's stale private translation must be gone.
        assert 21 not in classifier.tlbs[0]

    def test_third_core_sees_shared_without_reclassification(self):
        classifier = PageClassifier(num_cores=4)
        classifier.classify_access(0, 22, instruction=False)
        classifier.classify_access(1, 22, instruction=False)
        page_class, event = classifier.classify_access(3, 22, instruction=False)
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.TLB_FILL
        assert classifier.reclassifications == 1

    def test_thread_migration_keeps_page_private(self):
        classifier = PageClassifier(num_cores=4)
        classifier.scheduler.schedule(thread_id=7, core_id=0)
        classifier.classify_access(0, 30, instruction=False, thread_id=7)
        classifier.scheduler.migrate(thread_id=7, to_core=2)
        page_class, event = classifier.classify_access(
            2, 30, instruction=False, thread_id=7
        )
        assert page_class is PageClass.PRIVATE
        assert event.kind == ClassificationEvent.MIGRATION_REOWN
        assert classifier.page_table.lookup(30).owner_cid == 2
        assert classifier.migration_reowns == 1

    def test_unmigrated_thread_on_new_core_means_sharing(self):
        """CID mismatch + no migration record => genuine sharing."""
        classifier = PageClassifier(num_cores=4)
        classifier.classify_access(0, 31, instruction=False, thread_id=7)
        page_class, event = classifier.classify_access(
            2, 31, instruction=False, thread_id=9
        )
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.RECLASSIFY_TO_SHARED
        assert classifier.migration_reowns == 0

    def test_missing_thread_id_cannot_claim_migration(self):
        """Without thread attribution the OS must assume sharing."""
        classifier = PageClassifier(num_cores=4)
        classifier.scheduler.schedule(thread_id=7, core_id=0)
        classifier.classify_access(0, 32, instruction=False, thread_id=7)
        classifier.scheduler.migrate(thread_id=7, to_core=2)
        page_class, event = classifier.classify_access(2, 32, instruction=False)
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.RECLASSIFY_TO_SHARED

    def test_migrated_thread_touching_anothers_page_means_sharing(self):
        """A thread that migrated between unrelated cores is still a new
        sharer of somebody else's private page, not its migrated owner."""
        classifier = PageClassifier(num_cores=4)
        classifier.scheduler.schedule(thread_id=5, core_id=0)
        classifier.classify_access(0, 36, instruction=False, thread_id=5)
        classifier.scheduler.schedule(thread_id=7, core_id=1)
        classifier.scheduler.migrate(thread_id=7, to_core=2)  # 1 -> 2, not 0
        page_class, event = classifier.classify_access(
            2, 36, instruction=False, thread_id=7
        )
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.RECLASSIFY_TO_SHARED
        assert classifier.migration_reowns == 0

    def test_expired_migration_window_reclassifies_instead_of_reowning(self):
        scheduler = ThreadScheduler(num_cores=4, migration_window=0)
        classifier = PageClassifier(num_cores=4, scheduler=scheduler)
        scheduler.schedule(thread_id=7, core_id=0)
        classifier.classify_access(0, 33, instruction=False, thread_id=7)
        scheduler.migrate(thread_id=7, to_core=2)
        scheduler.migrate(thread_id=9, to_core=3)  # pushes 7 out of the window
        page_class, event = classifier.classify_access(
            2, 33, instruction=False, thread_id=7
        )
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.RECLASSIFY_TO_SHARED
        assert classifier.reclassifications == 1 and classifier.migration_reowns == 0

    def test_reown_charges_reclassify_latency_and_shoots_down(self):
        classifier = PageClassifier(num_cores=4)
        shootdowns = []
        classifier.scheduler.schedule(thread_id=7, core_id=0)
        classifier.classify_access(0, 34, instruction=False, thread_id=7)
        classifier.scheduler.migrate(thread_id=7, to_core=2)
        _, event = classifier.classify_access(
            2, 34, instruction=False, thread_id=7,
            shootdown=lambda page, owner: shootdowns.append((page, owner)) or 2,
        )
        assert event.kind == ClassificationEvent.MIGRATION_REOWN
        assert event.latency_cycles == classifier.reclassify_latency
        assert event.shootdown_blocks == 2
        assert shootdowns == [(34, 0)]  # blocks invalidated at the old owner
        assert 34 not in classifier.tlbs[0]  # stale translation shot down
        assert classifier.page_table.lookup(34).migrations == 1

    def test_reowned_page_can_still_become_shared_later(self):
        classifier = PageClassifier(num_cores=4)
        classifier.scheduler.schedule(thread_id=7, core_id=0)
        classifier.classify_access(0, 35, instruction=False, thread_id=7)
        classifier.scheduler.migrate(thread_id=7, to_core=2)
        classifier.classify_access(2, 35, instruction=False, thread_id=7)
        page_class, event = classifier.classify_access(
            1, 35, instruction=False, thread_id=9
        )
        assert page_class is PageClass.SHARED
        assert event.kind == ClassificationEvent.RECLASSIFY_TO_SHARED
        assert classifier.migration_reowns == 1
        assert classifier.reclassifications == 1

    def test_data_touch_of_instruction_page_becomes_private(self):
        classifier = PageClassifier(num_cores=4)
        classifier.classify_access(0, 40, instruction=True)
        page_class, _ = classifier.classify_access(1, 40, instruction=False)
        assert page_class is PageClass.PRIVATE

    def test_reclassification_costs_more_than_a_trap(self):
        classifier = PageClassifier(num_cores=4)
        classifier.classify_access(0, 50, instruction=False)
        _, event = classifier.classify_access(1, 50, instruction=False)
        assert event.latency_cycles == classifier.reclassify_latency
        assert classifier.total_overhead_cycles >= classifier.reclassify_latency

    def test_invalid_core_rejected(self):
        classifier = PageClassifier(num_cores=2)
        with pytest.raises(ClassificationError):
            classifier.classify_access(5, 1, instruction=False)

    def test_zero_cores_rejected(self):
        with pytest.raises(ClassificationError):
            PageClassifier(num_cores=0)
