"""Tests for topologies, routing and the network latency model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp.config import InterconnectConfig
from repro.errors import ConfigurationError
from repro.interconnect.network import NetworkModel
from repro.interconnect.routing import dimension_order_route, link_loads
from repro.interconnect.topology import FoldedTorus2D, Mesh2D, build_topology


class TestFoldedTorus:
    def test_wraparound_distance(self):
        torus = FoldedTorus2D(4, 4)
        # Tile 0 (0,0) and tile 3 (0,3) are one hop apart thanks to wrap-around.
        assert torus.hop_distance(0, 3) == 1
        assert torus.hop_distance(0, 12) == 1

    def test_maximum_distance_on_4x4(self):
        torus = FoldedTorus2D(4, 4)
        assert torus.diameter() == 4
        assert torus.hop_distance(0, 10) == 4

    def test_distance_symmetry(self):
        torus = FoldedTorus2D(4, 4)
        for src in range(16):
            for dst in range(16):
                assert torus.hop_distance(src, dst) == torus.hop_distance(dst, src)

    def test_every_node_has_same_latency_profile(self):
        """A torus has no edges: every node sees the same distance distribution."""
        torus = FoldedTorus2D(4, 4)
        reference = torus.average_distance(0)
        for node in range(1, 16):
            assert torus.average_distance(node) == pytest.approx(reference)

    def test_neighbors(self):
        torus = FoldedTorus2D(4, 4)
        assert torus.neighbors(0) == [1, 3, 4, 12]

    def test_4x2_torus(self):
        torus = FoldedTorus2D(4, 2)
        assert torus.num_nodes == 8
        assert torus.hop_distance(0, 1) == 1
        assert torus.hop_distance(0, 7) == 2

    def test_nodes_within(self):
        torus = FoldedTorus2D(4, 4)
        assert set(torus.nodes_within(0, 1)) == {0, 1, 3, 4, 12}

    def test_rejects_bad_node(self):
        with pytest.raises(ConfigurationError):
            FoldedTorus2D(4, 4).hop_distance(0, 16)


class TestMesh:
    def test_no_wraparound(self):
        mesh = Mesh2D(4, 4)
        assert mesh.hop_distance(0, 3) == 3
        assert mesh.hop_distance(0, 15) == 6

    def test_corner_has_two_neighbors(self):
        mesh = Mesh2D(4, 4)
        assert mesh.neighbors(0) == [1, 4]
        assert len(mesh.neighbors(5)) == 4

    def test_mesh_penalizes_edges_relative_to_torus(self):
        """Section 5.1: meshes penalise edge tiles; tori treat nodes equally."""
        mesh, torus = Mesh2D(4, 4), FoldedTorus2D(4, 4)
        assert mesh.average_distance(0) > torus.average_distance(0)
        assert mesh.average_distance(5) < mesh.average_distance(0)


class TestBuildTopology:
    def test_builds_torus_and_mesh(self):
        assert isinstance(build_topology(InterconnectConfig()), FoldedTorus2D)
        assert isinstance(
            build_topology(InterconnectConfig(topology="mesh")), Mesh2D
        )


class TestRouting:
    def test_route_endpoints(self):
        torus = FoldedTorus2D(4, 4)
        path = dimension_order_route(torus, 0, 10)
        assert path[0] == 0 and path[-1] == 10

    def test_route_length_matches_hop_distance(self):
        torus = FoldedTorus2D(4, 4)
        for src in range(16):
            for dst in range(16):
                path = dimension_order_route(torus, src, dst)
                assert len(path) - 1 == torus.hop_distance(src, dst)

    def test_route_steps_are_adjacent(self):
        torus = FoldedTorus2D(4, 4)
        path = dimension_order_route(torus, 0, 10)
        for a, b in zip(path, path[1:], strict=False):
            assert b in torus.neighbors(a)

    def test_mesh_route_length(self):
        mesh = Mesh2D(4, 4)
        path = dimension_order_route(mesh, 0, 15)
        assert len(path) - 1 == 6

    def test_link_loads_counts_traffic(self):
        torus = FoldedTorus2D(2, 2)
        loads = link_loads(torus, {(0, 1): 5, (1, 0): 2})
        assert loads[(0, 1)] == 5
        assert loads[(1, 0)] == 2

    @given(src=st.integers(0, 15), dst=st.integers(0, 15))
    @settings(max_examples=60, deadline=None)
    def test_route_is_minimal_on_torus(self, src, dst):
        torus = FoldedTorus2D(4, 4)
        path = dimension_order_route(torus, src, dst)
        assert len(path) - 1 == torus.hop_distance(src, dst)


class TestNetworkModel:
    def test_local_latency_is_single_router(self):
        network = NetworkModel(InterconnectConfig())
        assert network.one_way_latency(0, 0) == 2

    def test_one_hop_latency(self):
        network = NetworkModel(InterconnectConfig())
        # 1 link + 2 routers = 1*1 + 2*2 = 5 cycles.
        assert network.one_way_latency(0, 1) == 5

    def test_round_trip_is_double(self):
        network = NetworkModel(InterconnectConfig())
        assert network.round_trip_latency(0, 5) == 2 * network.one_way_latency(0, 5)

    def test_send_accumulates_stats(self):
        network = NetworkModel(InterconnectConfig())
        network.send(0, 1, "req")
        network.send(0, 2, "data")
        assert network.messages == 2
        assert network.messages_by_class["req"] == 1
        assert network.total_hops == 3
        assert network.average_hops == pytest.approx(1.5)

    def test_average_latency_uniform_on_torus(self):
        network = NetworkModel(InterconnectConfig())
        values = {network.average_one_way_latency(n) for n in range(16)}
        assert len(values) == 1

    def test_reset_stats(self):
        network = NetworkModel(InterconnectConfig())
        network.send(0, 1)
        network.reset_stats()
        assert network.messages == 0 and network.total_hops == 0
