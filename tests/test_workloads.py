"""Tests for workload specs, the trace generator and trace persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import AccessType
from repro.cmp.config import SystemConfig
from repro.errors import ConfigurationError, TraceError
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import (
    EXTENDED_WORKLOADS,
    WORKLOADS,
    AccessClassProfile,
    WorkloadSpec,
    get_workload,
)
from repro.workloads.trace import Trace, TraceRecord

from .conftest import TEST_SCALE


class TestSpecs:
    def test_eight_primary_workloads(self):
        assert len(WORKLOADS) == 8
        assert set(WORKLOADS) == {
            "oltp-db2", "apache", "dss-qry6", "dss-qry8", "dss-qry13",
            "em3d", "oltp-oracle", "mix",
        }

    def test_extended_catalogue_is_superset(self):
        assert set(WORKLOADS) <= set(EXTENDED_WORKLOADS)
        assert len(EXTENDED_WORKLOADS) > len(WORKLOADS)

    def test_fractions_sum_to_one(self):
        for spec in EXTENDED_WORKLOADS.values():
            assert sum(spec.class_fractions.values()) == pytest.approx(1.0)

    def test_server_workloads_are_instruction_and_shared_heavy(self):
        """Figure 3: server workloads are dominated by instructions + shared data."""
        for name in ("oltp-db2", "oltp-oracle", "apache"):
            spec = WORKLOADS[name]
            assert spec.instructions.fraction + spec.shared_fraction > 0.5

    def test_scientific_and_multiprogrammed_are_private_heavy(self):
        """Figure 3: em3d and MIX are dominated by private data."""
        for name in ("em3d", "mix"):
            assert WORKLOADS[name].private_data.fraction > 0.7

    def test_instructions_are_read_only(self):
        for spec in EXTENDED_WORKLOADS.values():
            assert spec.instructions.read_write_fraction == 0.0

    def test_shared_rw_is_mostly_read_write(self):
        """Figure 2: shared data is predominantly read-write."""
        for spec in WORKLOADS.values():
            assert spec.shared_rw.read_write_fraction >= 0.8

    def test_get_workload_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("doom")

    def test_invalid_fraction_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="bad",
                category="server",
                description="",
                instructions=AccessClassProfile(fraction=0.5, working_set_kb=10),
                private_data=AccessClassProfile(fraction=0.5, working_set_kb=10),
                shared_rw=AccessClassProfile(fraction=0.5, working_set_kb=10),
                shared_ro=AccessClassProfile(fraction=0.5, working_set_kb=10),
            )

    def test_invalid_category_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="bad",
                category="mobile",
                description="",
                instructions=AccessClassProfile(fraction=0.25, working_set_kb=10),
                private_data=AccessClassProfile(fraction=0.25, working_set_kb=10),
                shared_rw=AccessClassProfile(fraction=0.25, working_set_kb=10),
                shared_ro=AccessClassProfile(fraction=0.25, working_set_kb=10),
            )

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            AccessClassProfile(fraction=1.5, working_set_kb=1)
        with pytest.raises(ConfigurationError):
            AccessClassProfile(fraction=0.5, working_set_kb=-1)


class TestTraceRecord:
    def test_defaults(self):
        record = TraceRecord(core=2, access_type=AccessType.LOAD, address=0x40)
        assert record.thread == 2
        assert not record.is_instruction and not record.is_write

    def test_validation(self):
        with pytest.raises(TraceError):
            TraceRecord(core=-1, access_type=AccessType.LOAD, address=0)
        with pytest.raises(TraceError):
            TraceRecord(core=0, access_type=AccessType.LOAD, address=-4)


class TestTraceContainer:
    def test_len_iter_getitem(self, oltp_trace):
        assert len(oltp_trace) == 4000
        assert oltp_trace[0] is next(iter(oltp_trace))

    def test_num_cores_inferred(self):
        records = [TraceRecord(core=c, access_type=AccessType.LOAD, address=64 * c) for c in range(3)]
        assert Trace(records).num_cores == 3

    def test_class_mix_sums_to_one(self, oltp_trace):
        assert sum(oltp_trace.class_mix().values()) == pytest.approx(1.0)

    def test_records_for_core(self, oltp_trace):
        for record in oltp_trace.records_for_core(3):
            assert record.core == 3

    def test_save_and_load_roundtrip(self, tmp_path, mix_trace):
        path = tmp_path / "trace.npz"
        mix_trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(mix_trace)
        assert loaded.workload == mix_trace.workload
        assert loaded.num_cores == mix_trace.num_cores
        first_original, first_loaded = mix_trace[0], loaded[0]
        assert first_original.address == first_loaded.address
        assert first_original.access_type == first_loaded.access_type
        assert first_original.true_class == first_loaded.true_class

    def test_load_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_text("")
        with pytest.raises(TraceError):
            Trace.load(path)


class TestGenerator:
    def make_generator(self, name: str = "oltp-db2", seed: int = 0):
        spec = get_workload(name)
        config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
        return SyntheticTraceGenerator(spec, config, seed=seed, scale=TEST_SCALE)

    def test_determinism(self):
        trace_a = self.make_generator(seed=11).generate(2000)
        trace_b = self.make_generator(seed=11).generate(2000)
        assert [r.address for r in trace_a] == [r.address for r in trace_b]
        assert [r.core for r in trace_a] == [r.core for r in trace_b]

    def test_different_seeds_differ(self):
        trace_a = self.make_generator(seed=1).generate(2000)
        trace_b = self.make_generator(seed=2).generate(2000)
        assert [r.address for r in trace_a] != [r.address for r in trace_b]

    def test_class_mix_tracks_spec(self):
        spec = get_workload("oltp-db2")
        trace = self.make_generator().generate(12000)
        mix = trace.class_mix()
        for name, expected in spec.class_fractions.items():
            assert mix.get(name, 0.0) == pytest.approx(expected, abs=0.03)

    def test_private_blocks_touched_by_single_core(self):
        trace = self.make_generator().generate(8000)
        sharers: dict[int, set[int]] = {}
        for record in trace:
            if record.true_class == "private":
                sharers.setdefault(record.address >> 6, set()).add(record.core)
        # Aside from the deliberately mixed pages, private blocks have 1 sharer.
        multi = sum(1 for cores in sharers.values() if len(cores) > 1)
        assert multi / max(1, len(sharers)) < 0.02

    def test_instruction_accesses_are_fetches_and_shared(self):
        trace = self.make_generator().generate(8000)
        instruction_cores: dict[int, set[int]] = {}
        for record in trace:
            if record.true_class == "instruction":
                assert record.access_type is AccessType.INSTRUCTION
                instruction_cores.setdefault(record.address >> 6, set()).add(record.core)
        popular = [cores for cores in instruction_cores.values() if len(cores) >= 2]
        assert popular, "server instruction blocks should be shared by many cores"

    def test_shared_ro_blocks_never_written(self):
        trace = self.make_generator().generate(8000)
        for record in trace:
            if record.true_class == "shared_ro":
                assert not record.is_write

    def test_scientific_sharing_is_neighbour_limited(self):
        trace = self.make_generator("em3d").generate(12000)
        sharers: dict[int, set[int]] = {}
        for record in trace:
            if record.true_class == "shared_rw":
                sharers.setdefault(record.address >> 6, set()).add(record.core)
        counts = [len(cores) for cores in sharers.values() if len(cores) > 1]
        assert counts and np.mean(counts) <= 6

    def test_addresses_are_block_aligned_and_positive(self):
        trace = self.make_generator().generate(3000)
        for record in trace:
            assert record.address % 64 == 0
            assert record.address >= 0

    def test_page_scatter_spreads_home_slices(self):
        """Physical page allocation must not concentrate blocks on few slices."""
        config = SystemConfig.server_16core().scaled(TEST_SCALE)
        trace = self.make_generator().generate(8000)
        from repro.cmp.chip import TiledChip

        chip = TiledChip(config)
        homes = {chip.home_slice(r.address >> 6) for r in trace}
        assert len(homes) == config.num_tiles

    def test_working_set_blocks_reporting(self):
        generator = self.make_generator()
        blocks = generator.working_set_blocks
        assert blocks["private_total"] == blocks["private"] * 16
        assert all(count >= 4 for count in blocks.values())

    def test_rejects_bad_parameters(self):
        spec = get_workload("mix")
        config = SystemConfig.multiprogrammed_8core().scaled(TEST_SCALE)
        with pytest.raises(ConfigurationError):
            SyntheticTraceGenerator(spec, config, scale=0)
        generator = SyntheticTraceGenerator(spec, config, scale=TEST_SCALE)
        with pytest.raises(TraceError):
            generator.generate(0)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_any_seed_produces_valid_records(self, seed):
        trace = self.make_generator(seed=seed).generate(500)
        assert len(trace) == 500
        for record in trace:
            assert 0 <= record.core < 16
            assert record.instructions >= 1
