"""Equivalence guard: the fast columnar engine must reproduce the seed path.

The fast engine (columnar trace, reused access/outcome objects, fused
statistics accumulation) and the reference engine (the preserved seed
implementation in :mod:`repro.sim.seed_path`) replay the same trace through
fresh chips and must produce **numerically identical** results — the same
``SimulationStats`` field for field, the same CPI, the same breakdown, the
same off-chip rate, the same confidence interval, for every design on both
workload categories.  Any optimisation that changes a number fails here.
"""

from __future__ import annotations

import pytest

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.sim.engine import TraceSimulator, simulate_workload
from repro.sim.latency import CpiModel
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE

DESIGN_LETTERS = ("P", "A", "S", "R", "I")

#: One server and one multiprogrammed workload (different chip geometry,
#: different class mixes, different CPI models).
WORKLOADS = ("oltp-db2", "mix")

RECORDS = 4000


@pytest.fixture(scope="module")
def traces():
    """One shared trace + config per workload (both engines replay it)."""
    shared = {}
    for name in WORKLOADS:
        spec = get_workload(name)
        config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
        generator = SyntheticTraceGenerator(spec, config, seed=3, scale=TEST_SCALE)
        shared[name] = (spec, config, generator.generate(RECORDS))
    return shared


def _simulate(engine, letter, spec, config, trace):
    chip = TiledChip(config)
    design = build_design(letter, chip)
    simulator = TraceSimulator(design, CpiModel.for_workload(spec), engine=engine)
    return simulator.run(trace)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_fast_engine_matches_seed_path(traces, workload, letter):
    spec, config, trace = traces[workload]
    fast = _simulate("fast", letter, spec, config, trace)
    seed = _simulate("reference", letter, spec, config, trace)

    # Full statistics object, field for field (exact floats, no approx).
    assert fast.stats.to_dict() == seed.stats.to_dict()
    # Headline metrics.
    assert fast.cpi == seed.cpi
    assert fast.ipc == seed.ipc
    assert fast.cpi_breakdown() == seed.cpi_breakdown()
    assert fast.stats.offchip_rate == seed.stats.offchip_rate
    # Per-class CPI components (Figures 8-10 inputs).
    for access_class in ("instruction", "private", "shared"):
        assert fast.stats.class_cpi(access_class) == seed.stats.class_cpi(access_class)
    # Confidence interval from the per-sample CPIs.
    assert (fast.cpi_confidence is None) == (seed.cpi_confidence is None)
    if fast.cpi_confidence is not None:
        assert fast.cpi_confidence.to_dict() == seed.cpi_confidence.to_dict()
    # Metadata (includes offchip_rate and any design-specific extras such as
    # the R-NUCA misclassification rate and the ASR allocation probability).
    assert fast.metadata == seed.metadata


@pytest.mark.parametrize("workload", WORKLOADS)
def test_engine_env_and_kwarg_select_reference(monkeypatch, traces, workload):
    spec, config, trace = traces[workload]
    by_kwarg = _simulate("reference", "S", spec, config, trace)
    monkeypatch.setenv("RNUCA_ENGINE", "reference")
    chip = TiledChip(config)
    design = build_design("S", chip)
    by_env = TraceSimulator(design, CpiModel.for_workload(spec)).run(trace)
    assert by_env.stats.to_dict() == by_kwarg.stats.to_dict()


def test_simulate_workload_accepts_engine(traces):
    spec, config, trace = traces["mix"]
    fast = simulate_workload(
        spec, "R", config=config, scale=TEST_SCALE, trace=trace, engine="fast"
    )
    seed = simulate_workload(
        spec, "R", config=config, scale=TEST_SCALE, trace=trace, engine="reference"
    )
    assert fast.cpi == seed.cpi
    assert fast.stats.to_dict() == seed.stats.to_dict()


def test_unknown_engine_rejected(traces):
    from repro.errors import SimulationError

    spec, config, trace = traces["mix"]
    chip = TiledChip(config)
    design = build_design("P", chip)
    with pytest.raises(SimulationError):
        TraceSimulator(design, CpiModel.for_workload(spec), engine="warp")
    simulator = TraceSimulator(design, CpiModel.for_workload(spec))
    with pytest.raises(SimulationError):
        simulator.run(trace, engine="warp")


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_single_phase_dynamic_replay_is_bit_identical_to_static(
    traces, workload, letter
):
    """The dynamics backward-compatibility contract.

    A DynamicWorkloadSpec with one phase and an empty schedule generates a
    trace whose replay is **bit-identical** to today's static fast path:
    same RNG draw sequence in the generator (thread ids explicit instead of
    the NO_THREAD sentinel, which the engines treat identically) and no
    events, so the event-aware replay never engages.
    """
    from repro.dynamics import DynamicTraceGenerator, DynamicWorkloadSpec

    spec, config, trace = traces[workload]
    dynamic_trace = DynamicTraceGenerator(
        DynamicWorkloadSpec(name=workload, base=spec), config, seed=3, scale=TEST_SCALE
    ).generate(RECORDS)
    assert not dynamic_trace.is_dynamic

    static = _simulate("fast", letter, spec, config, trace)
    dynamic = _simulate("fast", letter, spec, config, dynamic_trace)
    assert dynamic.stats.to_dict() == static.stats.to_dict()
    assert dynamic.cpi == static.cpi
    assert dynamic.cpi_breakdown() == static.cpi_breakdown()
    assert (dynamic.cpi_confidence is None) == (static.cpi_confidence is None)
    if dynamic.cpi_confidence is not None:
        assert dynamic.cpi_confidence.to_dict() == static.cpi_confidence.to_dict()


def test_env_engine_typo_fails_loudly(monkeypatch, traces):
    """A misspelt RNUCA_ENGINE must not silently fall back to the fast path."""
    from repro.errors import SimulationError

    spec, config, _ = traces["mix"]
    monkeypatch.setenv("RNUCA_ENGINE", "refernce")
    chip = TiledChip(config)
    design = build_design("P", chip)
    with pytest.raises(SimulationError):
        TraceSimulator(design, CpiModel.for_workload(spec))


# --------------------------------------------------------------------- #
# Zero-copy equivalence: memory-mapped traces replay bit-identically
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("engine", ("fast", "reference"))
def test_mmap_loaded_trace_replays_bit_identically(tmp_path, traces, workload, engine):
    """A trace served from the binary store is the trace, for both engines.

    This is what makes the cross-process sharing in the batch runner safe:
    a worker replaying the memory-mapped file must produce the same
    ``SimulationStats`` field for field as the parent replaying the
    in-memory original.
    """
    import numpy as np

    from repro.workloads.trace import Trace

    spec, config, trace = traces[workload]
    path = tmp_path / "trace.npz"
    trace.save(path)
    mapped = Trace.load(path)
    assert isinstance(mapped.columns.core, np.memmap)

    from_memory = _simulate(engine, "R", spec, config, trace)
    from_mmap = _simulate(engine, "R", spec, config, mapped)
    assert from_mmap.stats.to_dict() == from_memory.stats.to_dict()
    assert from_mmap.cpi == from_memory.cpi
    assert from_mmap.cpi_breakdown() == from_memory.cpi_breakdown()
    if from_memory.cpi_confidence is not None:
        assert from_mmap.cpi_confidence.to_dict() == from_memory.cpi_confidence.to_dict()
    assert from_mmap.metadata == from_memory.metadata


@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_mmap_loaded_dynamic_trace_replays_bit_identically(tmp_path, letter):
    """Event-carrying traces survive the store: same stats, phases and all."""
    import numpy as np

    from repro.dynamics.generator import DynamicTraceGenerator
    from repro.dynamics.scenarios import resolve_dynamic
    from repro.workloads.trace import Trace

    dspec = resolve_dynamic("oltp-db2:migrate")
    spec = dspec.base
    config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
    trace = DynamicTraceGenerator(dspec, config, seed=3, scale=TEST_SCALE).generate(RECORDS)
    assert trace.is_dynamic

    path = tmp_path / "dyn.npz"
    trace.save(path)
    mapped = Trace.load(path)
    assert isinstance(mapped.columns.core, np.memmap)
    assert mapped.events.rows() == trace.events.rows()

    from_memory = _simulate("fast", letter, spec, config, trace)
    from_mmap = _simulate("fast", letter, spec, config, mapped)
    assert from_mmap.stats.to_dict() == from_memory.stats.to_dict()
    assert from_mmap.cpi == from_memory.cpi
    assert from_mmap.metadata == from_memory.metadata
