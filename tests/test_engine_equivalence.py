"""Differential-oracle harness: the three replay engines must agree bit for bit.

The fast engine (columnar trace, reused access/outcome objects, fused
statistics accumulation), the batch engine (the vectorised numpy kernel in
:mod:`repro.sim.batch`, falling back to the fast path outside its closed
form) and the reference engine (the preserved seed implementation in
:mod:`repro.sim.seed_path`) replay the same trace through fresh chips and
must produce **numerically identical** results — the same
``SimulationStats`` field for field, the same CPI, the same breakdown, the
same off-chip rate, the same confidence interval, for every design on both
workload categories, on static, dynamic (event-carrying) and adaptive
(feedback-scheduled) traces.  A seeded hypothesis fuzzer extends the matrix
with adversarial mini-traces (events on window boundaries, single-record
phases, migration storms, minimum-geometry cache pressure).  Any
optimisation that changes a number fails here.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.dynamics import DynamicTraceGenerator, DynamicWorkloadSpec
from repro.dynamics.adaptive import build_scheduler
from repro.dynamics.scenarios import resolve_dynamic
from repro.dynamics.spec import (
    MigrationEvent,
    MigrationSchedule,
    PhaseSpec,
    SharingOnset,
)
from repro.sim.engine import TraceSimulator, simulate_workload
from repro.sim.latency import CpiModel
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE

DESIGN_LETTERS = ("P", "A", "S", "R", "I")

#: Every replay engine; ``fast`` is the oracle the others are held against.
ENGINES = ("fast", "batch", "reference")

#: One server and one multiprogrammed workload (different chip geometry,
#: different class mixes, different CPI models).
WORKLOADS = ("oltp-db2", "mix")

#: One server and one multiprogrammed dynamic scenario (migrations plus a
#: sharing onset on the former; phase changes on the latter).
DYNAMIC_SCENARIOS = ("oltp-db2:migrate", "mix:phased")

RECORDS = 4000


@pytest.fixture(scope="module")
def traces():
    """One shared trace + config per workload (every engine replays it)."""
    shared = {}
    for name in WORKLOADS:
        spec = get_workload(name)
        config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
        generator = SyntheticTraceGenerator(spec, config, seed=3, scale=TEST_SCALE)
        shared[name] = (spec, config, generator.generate(RECORDS))
    return shared


@pytest.fixture(scope="module")
def dynamic_traces():
    """One shared event-carrying trace + config per dynamic scenario."""
    shared = {}
    for scenario in DYNAMIC_SCENARIOS:
        dspec = resolve_dynamic(scenario)
        config = SystemConfig.for_workload_category(dspec.category).scaled(TEST_SCALE)
        trace = DynamicTraceGenerator(dspec, config, seed=3, scale=TEST_SCALE).generate(
            RECORDS
        )
        assert trace.is_dynamic
        shared[scenario] = (dspec.base, config, trace)
    return shared


def _simulate(engine, letter, spec, config, trace, *, scheduler=None):
    chip = TiledChip(config)
    design = build_design(letter, chip)
    simulator = TraceSimulator(
        design, CpiModel.for_workload(spec), engine=engine, scheduler=scheduler
    )
    return simulator.run(trace)


def _assert_equivalent(result, oracle):
    """The full field-for-field battery (exact floats, no approx)."""
    assert result.stats.to_dict() == oracle.stats.to_dict()
    # Headline metrics.
    assert result.cpi == oracle.cpi
    assert result.ipc == oracle.ipc
    assert result.cpi_breakdown() == oracle.cpi_breakdown()
    assert result.stats.offchip_rate == oracle.stats.offchip_rate
    # Per-class CPI components (Figures 8-10 inputs).
    for access_class in ("instruction", "private", "shared"):
        assert result.stats.class_cpi(access_class) == oracle.stats.class_cpi(
            access_class
        )
    # Confidence interval from the per-sample CPIs.
    assert (result.cpi_confidence is None) == (oracle.cpi_confidence is None)
    if result.cpi_confidence is not None:
        assert result.cpi_confidence.to_dict() == oracle.cpi_confidence.to_dict()
    # Metadata (includes offchip_rate and any design-specific extras such as
    # the R-NUCA misclassification rate and the ASR allocation probability).
    assert result.metadata == oracle.metadata


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_engine_matrix_static(traces, workload, letter):
    """Three-way matrix, static traces: batch and reference vs fast."""
    spec, config, trace = traces[workload]
    fast = _simulate("fast", letter, spec, config, trace)
    batch = _simulate("batch", letter, spec, config, trace)
    seed = _simulate("reference", letter, spec, config, trace)
    _assert_equivalent(batch, fast)
    _assert_equivalent(seed, fast)


@pytest.mark.parametrize("scenario", DYNAMIC_SCENARIOS)
@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_engine_matrix_dynamic(dynamic_traces, scenario, letter):
    """Three-way matrix, event-carrying traces.

    The reference engine consumes dynamics end-to-end (its loud rejection
    is gone), so the seed-path oracle covers migrations, sharing onsets and
    phase changes too; the batch engine falls back to the fast path on
    dynamic traces, which must be invisible in the statistics.
    """
    spec, config, trace = dynamic_traces[scenario]
    fast = _simulate("fast", letter, spec, config, trace)
    batch = _simulate("batch", letter, spec, config, trace)
    seed = _simulate("reference", letter, spec, config, trace)
    assert fast.metadata["dynamic"] is True
    _assert_equivalent(batch, fast)
    _assert_equivalent(seed, fast)


@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_engine_matrix_adaptive(letter):
    """Fast vs batch under a feedback scheduler (reference has no hook).

    Both engines route scheduler-attached replay through the adaptive
    window loop; a fresh same-seed scheduler per engine must yield the
    same migrations and therefore bit-identical statistics.
    """
    dspec = resolve_dynamic("mix:adaptive")
    config = SystemConfig.for_workload_category(dspec.category).scaled(TEST_SCALE)
    trace = DynamicTraceGenerator(dspec, config, seed=3, scale=TEST_SCALE).generate(
        RECORDS
    )
    results = {
        engine: _simulate(
            engine,
            letter,
            dspec.base,
            config,
            trace,
            scheduler=build_scheduler("greedy", seed=7),
        )
        for engine in ("fast", "batch")
    }
    assert results["fast"].metadata["scheduler"] == "greedy"
    _assert_equivalent(results["batch"], results["fast"])


@pytest.mark.parametrize("workload", WORKLOADS)
def test_engine_env_and_kwarg_select_reference(monkeypatch, traces, workload):
    spec, config, trace = traces[workload]
    by_kwarg = _simulate("reference", "S", spec, config, trace)
    monkeypatch.setenv("RNUCA_ENGINE", "reference")
    chip = TiledChip(config)
    design = build_design("S", chip)
    by_env = TraceSimulator(design, CpiModel.for_workload(spec)).run(trace)
    assert by_env.stats.to_dict() == by_kwarg.stats.to_dict()


def test_simulate_workload_accepts_engine(traces):
    spec, config, trace = traces["mix"]
    fast = simulate_workload(
        spec, "R", config=config, scale=TEST_SCALE, trace=trace, engine="fast"
    )
    seed = simulate_workload(
        spec, "R", config=config, scale=TEST_SCALE, trace=trace, engine="reference"
    )
    assert fast.cpi == seed.cpi
    assert fast.stats.to_dict() == seed.stats.to_dict()


def test_unknown_engine_rejected(traces):
    from repro.errors import SimulationError

    spec, config, trace = traces["mix"]
    chip = TiledChip(config)
    design = build_design("P", chip)
    with pytest.raises(SimulationError):
        TraceSimulator(design, CpiModel.for_workload(spec), engine="warp")
    simulator = TraceSimulator(design, CpiModel.for_workload(spec))
    with pytest.raises(SimulationError):
        simulator.run(trace, engine="warp")


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_single_phase_dynamic_replay_is_bit_identical_to_static(
    traces, workload, letter
):
    """The dynamics backward-compatibility contract.

    A DynamicWorkloadSpec with one phase and an empty schedule generates a
    trace whose replay is **bit-identical** to today's static fast path:
    same RNG draw sequence in the generator (thread ids explicit instead of
    the NO_THREAD sentinel, which the engines treat identically) and no
    events, so the event-aware replay never engages.
    """
    spec, config, trace = traces[workload]
    dynamic_trace = DynamicTraceGenerator(
        DynamicWorkloadSpec(name=workload, base=spec), config, seed=3, scale=TEST_SCALE
    ).generate(RECORDS)
    assert not dynamic_trace.is_dynamic

    static = _simulate("fast", letter, spec, config, trace)
    dynamic = _simulate("fast", letter, spec, config, dynamic_trace)
    assert dynamic.stats.to_dict() == static.stats.to_dict()
    assert dynamic.cpi == static.cpi
    assert dynamic.cpi_breakdown() == static.cpi_breakdown()
    assert (dynamic.cpi_confidence is None) == (static.cpi_confidence is None)
    if dynamic.cpi_confidence is not None:
        assert dynamic.cpi_confidence.to_dict() == static.cpi_confidence.to_dict()


def test_env_engine_typo_fails_loudly(monkeypatch, traces):
    """A misspelt RNUCA_ENGINE must not silently fall back to the fast path."""
    from repro.errors import SimulationError

    spec, config, _ = traces["mix"]
    monkeypatch.setenv("RNUCA_ENGINE", "refernce")
    chip = TiledChip(config)
    design = build_design("P", chip)
    with pytest.raises(SimulationError):
        TraceSimulator(design, CpiModel.for_workload(spec))


# --------------------------------------------------------------------- #
# Zero-copy equivalence: memory-mapped traces replay bit-identically
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("engine", ENGINES)
def test_mmap_loaded_trace_replays_bit_identically(tmp_path, traces, workload, engine):
    """A trace served from the binary store is the trace, for both engines.

    This is what makes the cross-process sharing in the batch runner safe:
    a worker replaying the memory-mapped file must produce the same
    ``SimulationStats`` field for field as the parent replaying the
    in-memory original.
    """
    import numpy as np

    from repro.workloads.trace import Trace

    spec, config, trace = traces[workload]
    path = tmp_path / "trace.npz"
    trace.save(path)
    mapped = Trace.load(path)
    assert isinstance(mapped.columns.core, np.memmap)

    from_memory = _simulate(engine, "R", spec, config, trace)
    from_mmap = _simulate(engine, "R", spec, config, mapped)
    assert from_mmap.stats.to_dict() == from_memory.stats.to_dict()
    assert from_mmap.cpi == from_memory.cpi
    assert from_mmap.cpi_breakdown() == from_memory.cpi_breakdown()
    if from_memory.cpi_confidence is not None:
        assert from_mmap.cpi_confidence.to_dict() == from_memory.cpi_confidence.to_dict()
    assert from_mmap.metadata == from_memory.metadata


@pytest.mark.parametrize("letter", DESIGN_LETTERS)
def test_mmap_loaded_dynamic_trace_replays_bit_identically(tmp_path, letter):
    """Event-carrying traces survive the store: same stats, phases and all."""
    import numpy as np

    from repro.dynamics.generator import DynamicTraceGenerator
    from repro.dynamics.scenarios import resolve_dynamic
    from repro.workloads.trace import Trace

    dspec = resolve_dynamic("oltp-db2:migrate")
    spec = dspec.base
    config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
    trace = DynamicTraceGenerator(dspec, config, seed=3, scale=TEST_SCALE).generate(RECORDS)
    assert trace.is_dynamic

    path = tmp_path / "dyn.npz"
    trace.save(path)
    mapped = Trace.load(path)
    assert isinstance(mapped.columns.core, np.memmap)
    assert mapped.events.rows() == trace.events.rows()

    from_memory = _simulate("fast", letter, spec, config, trace)
    from_mmap = _simulate("fast", letter, spec, config, mapped)
    assert from_mmap.stats.to_dict() == from_memory.stats.to_dict()
    assert from_mmap.cpi == from_memory.cpi
    assert from_mmap.metadata == from_memory.metadata


# --------------------------------------------------------------------- #
# Seeded hypothesis fuzzer: adversarial mini-traces
# --------------------------------------------------------------------- #
# ``derandomize=True`` makes every run replay the same example sequence
# (seeded by the strategy definitions), so a red fuzz case is a plain
# deterministic test failure — no flaky CI, no example database.

#: Event positions as trace fractions.  Deliberately boundary-heavy:
#: 0.0 fires on the very first record, repeated 0.5 builds migration
#: storms (several events on one record), 0.999 lands on the last
#: window.
_POSITIONS = st.sampled_from((0.0, 0.125, 0.25, 0.5, 0.5, 0.75, 0.999))

#: The fuzz base is the 8-core multiprogrammed machine, so thread ids
#: and destination cores live in ``[0, 8)``.
_FUZZ_BASE = "mix"
_CORES = st.integers(min_value=0, max_value=7)

_MIGRATIONS = st.lists(
    st.builds(MigrationEvent, at=_POSITIONS, thread_id=_CORES, to_core=_CORES),
    max_size=6,
).map(tuple)

_ONSETS = st.lists(
    st.builds(
        SharingOnset,
        at=_POSITIONS,
        victim_thread=_CORES,
        redirect_fraction=st.sampled_from((0.2, 0.5)),
    ),
    max_size=1,
).map(tuple)

#: Phase duration weights.  A weight-1 phase next to a weight-400 phase
#: collapses to the guaranteed minimum of a single record, which is the
#: phase-boundary edge case the scalar engines special-case.
_DURATIONS = st.lists(st.sampled_from((1, 2, 40, 400)), max_size=3)

#: Alternate access mix applied to odd-numbered phases, so multi-phase
#: examples also exercise mid-trace class-mix changes.
_ALT_MIX = {"instruction": 0.4, "private": 0.3, "shared_rw": 0.2, "shared_ro": 0.1}

_fuzz_settings = settings(
    max_examples=12,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fuzz_spec(durations, migrations, onsets):
    phases = tuple(
        PhaseSpec(name=f"p{i}", duration=d, mix=_ALT_MIX if i % 2 else None)
        for i, d in enumerate(durations)
    )
    return DynamicWorkloadSpec(
        name="fuzz",
        base=get_workload(_FUZZ_BASE),
        phases=phases,
        schedule=MigrationSchedule(migrations=migrations, sharing_onsets=onsets),
    )


@_fuzz_settings
@given(
    durations=_DURATIONS,
    migrations=_MIGRATIONS,
    onsets=_ONSETS,
    seed=st.integers(min_value=0, max_value=3),
    records=st.sampled_from((160, 500, 1100)),
    letter=st.sampled_from(DESIGN_LETTERS),
)
def test_fuzz_dynamic_three_way(durations, migrations, onsets, seed, records, letter):
    """Adversarial schedules: storms, first/last-record events, 1-record phases.

    Every generated spec replays through all three engines and must be
    bit-identical field for field.
    """
    dspec = _fuzz_spec(durations, migrations, onsets)
    spec = dspec.base
    config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
    trace = DynamicTraceGenerator(dspec, config, seed=seed, scale=TEST_SCALE).generate(
        records
    )
    fast = _simulate("fast", letter, spec, config, trace)
    for engine in ("batch", "reference"):
        _assert_equivalent(_simulate(engine, letter, spec, config, trace), fast)


@_fuzz_settings
@given(
    k=st.sampled_from((0, 1, 2)),
    window=st.sampled_from((128, 250)),
    seed=st.integers(min_value=0, max_value=3),
    letter=st.sampled_from(DESIGN_LETTERS),
)
def test_fuzz_adaptive_window_boundary_events(k, window, seed, letter):
    """Trace events landing exactly on adaptive-window boundaries.

    ``at = k * window / records`` puts the migration on the first record
    of window ``k`` — the seam where the feedback loop hands one segment
    to the next.  Fast and batch replay the same fresh same-seed
    scheduler and must agree bit for bit (the reference engine has no
    feedback hook, so the pair is the whole oracle set here).
    """
    records = 1000
    at = k * window / records
    dspec = DynamicWorkloadSpec(
        name="boundary",
        base=get_workload(_FUZZ_BASE),
        schedule=MigrationSchedule(
            migrations=(MigrationEvent(at=at, thread_id=1, to_core=4),)
        ),
    )
    spec = dspec.base
    config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
    trace = DynamicTraceGenerator(dspec, config, seed=seed, scale=TEST_SCALE).generate(
        records
    )
    results = {
        engine: _simulate(
            engine,
            letter,
            spec,
            config,
            trace,
            scheduler=build_scheduler("greedy", seed=9, window_records=window),
        )
        for engine in ("fast", "batch")
    }
    assert results["fast"].metadata["scheduler"] == "greedy"
    _assert_equivalent(results["batch"], results["fast"])


@_fuzz_settings
@given(
    scale=st.sampled_from((256, 512)),
    workload=st.sampled_from(WORKLOADS),
    seed=st.integers(min_value=0, max_value=3),
    letter=st.sampled_from(DESIGN_LETTERS),
)
def test_fuzz_minimum_geometry_pressure(scale, workload, seed, letter):
    """Minimum-geometry replay: every set overflows, every miss path fires.

    The MSHR files are structural accounting only — replay never consults
    them — so "full-MSHR pressure" is expressed through its architectural
    cause instead: caches scaled down to one or two sets per level
    (scale 512 leaves a single L1 set), which drives eviction, victim
    and directory traffic to saturation on every record.  All three
    engines must still agree bit for bit.
    """
    spec = get_workload(workload)
    config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    trace = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale).generate(600)
    fast = _simulate("fast", letter, spec, config, trace)
    for engine in ("batch", "reference"):
        _assert_equivalent(_simulate(engine, letter, spec, config, trace), fast)
