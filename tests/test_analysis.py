"""Tests for the characterisation and figure-generation code."""

import pytest

from repro.analysis.characterization import (
    REUSE_BINS,
    classification_accuracy,
    classify_blocks,
    reference_breakdown,
    reference_clustering,
    reuse_histogram,
    working_set_cdf,
)
from repro.analysis.cpi_breakdown import (
    FIG7_COMPONENTS,
    cluster_size_sweep,
    fig7_cpi_breakdown,
    fig8_shared_data_cpi,
    fig9_private_data_cpi,
    fig10_instruction_cpi,
)
from repro.analysis.evaluation import EvaluationSuite, run_evaluation, simulate_rnuca_cluster
from repro.analysis.reporting import format_percentage_map, format_table
from repro.analysis.speedup import fig12_speedups, headline_numbers, workload_aversion
from repro.errors import SimulationError
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE


@pytest.fixture(scope="module")
def small_suite():
    """A tiny evaluation suite shared by the figure tests (module-scoped)."""
    return run_evaluation(
        workloads=("oltp-db2", "mix"),
        designs=("P", "S", "R", "I"),
        num_records=3000,
        scale=TEST_SCALE,
        seed=2,
        include_cluster_sweep=True,
        cluster_sizes=(1, 4),
        use_cache=False,
    )


class TestCharacterization:
    def test_classify_blocks_counts(self, oltp_trace):
        profiles = classify_blocks(oltp_trace)
        assert sum(p.accesses for p in profiles.values()) == len(oltp_trace)
        assert any(p.is_instruction for p in profiles.values())
        assert any(p.category == "private" for p in profiles.values())

    def test_reference_clustering_shape(self, oltp_trace):
        rows = reference_clustering(oltp_trace)
        assert sum(row["access_share"] for row in rows) == pytest.approx(1.0)
        for row in rows:
            assert 0 <= row["read_write_block_fraction"] <= 1
            assert row["kind"] in ("instruction", "data")
        # Server workloads: widely shared data bubbles exist (Figure 2a).
        assert any(row["sharers"] >= 8 for row in rows)

    def test_instruction_bubbles_are_read_only(self, oltp_trace):
        for row in reference_clustering(oltp_trace):
            if row["kind"] == "instruction":
                assert row["read_write_block_fraction"] == 0.0

    def test_reference_breakdown_matches_spec(self, oltp_trace):
        spec = get_workload("oltp-db2")
        breakdown = reference_breakdown(oltp_trace)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["instruction"] == pytest.approx(
            spec.instructions.fraction, abs=0.05
        )

    def test_working_set_cdf_monotone(self, oltp_trace):
        curves = working_set_cdf(oltp_trace)
        assert set(curves) == {"instruction", "private", "shared"}
        for points in curves.values():
            footprints = [p[0] for p in points]
            fractions = [p[1] for p in points]
            assert footprints == sorted(footprints)
            assert fractions == sorted(fractions)
            assert fractions[-1] <= 1.0

    def test_reuse_histogram_instructions_dominated_by_first_access(self, oltp_trace):
        """Figure 5: instruction accesses are finely interleaved between cores."""
        histogram = reuse_histogram(oltp_trace)
        assert set(histogram) == {"instruction", "shared"}
        for group in histogram.values():
            assert set(group) == set(REUSE_BINS)
            assert sum(group.values()) == pytest.approx(1.0)
        assert histogram["instruction"]["1st access"] > 0.5

    def test_classification_accuracy_bounds(self, oltp_trace, config16):
        accuracy = classification_accuracy(oltp_trace, page_size=config16.page_size)
        assert 0 <= accuracy["misclassified_access_fraction"] <= 0.1
        assert 0 <= accuracy["multi_class_page_access_fraction"] <= 0.6
        assert (
            accuracy["misclassified_access_fraction"]
            <= accuracy["multi_class_page_access_fraction"]
        )


class TestEvaluationSuite:
    def test_contains_all_pairs(self, small_suite):
        assert set(small_suite.results) == {
            (w, d) for w in ("oltp-db2", "mix") for d in ("P", "S", "R", "I")
        }
        assert small_suite.baseline("mix").design_letter == "P"
        assert set(small_suite.workload_results("mix")) == {"P", "S", "R", "I"}

    def test_cluster_sweep_populated(self, small_suite):
        assert set(small_suite.cluster_sweep) == {
            (w, s) for w in ("oltp-db2", "mix") for s in (1, 4)
        }

    def test_cache_reuses_suite(self):
        first = run_evaluation(
            workloads=("mix",), designs=("P",), num_records=1200, scale=TEST_SCALE
        )
        second = run_evaluation(
            workloads=("mix",), designs=("P",), num_records=1200, scale=TEST_SCALE
        )
        assert first is second

    def test_simulate_rnuca_cluster_records_size(self):
        result = simulate_rnuca_cluster(
            "mix", 2, num_records=1200, scale=TEST_SCALE
        )
        assert result.metadata["instruction_cluster_size"] == 2

    def test_scheduler_axis_routes_to_sweep(self):
        """Non-fixed schedulers land in scheduler_sweep; baselines stay put."""
        suite = run_evaluation(
            workloads=("mix",),
            designs=("P", "R"),
            num_records=1200,
            scale=TEST_SCALE,
            schedulers=("fixed", "greedy"),
            use_cache=False,
        )
        assert set(suite.results) == {("mix", "P"), ("mix", "R")}
        assert set(suite.scheduler_sweep) == {
            ("mix", "P", "greedy"), ("mix", "R", "greedy")
        }
        assert suite.policy_sweep == {}

    def test_policy_axis_routes_to_sweep(self):
        """Non-LRU replacement policies land in policy_sweep."""
        suite = run_evaluation(
            workloads=("mix",),
            designs=("R",),
            num_records=1200,
            scale=TEST_SCALE,
            policies=("lru", "fifo"),
            use_cache=False,
        )
        assert set(suite.results) == {("mix", "R")}
        assert set(suite.policy_sweep) == {("mix", "R", "fifo")}


class TestFigures:
    def test_fig7_rows(self, small_suite):
        rows = fig7_cpi_breakdown(small_suite)
        assert len(rows) == 8
        for row in rows:
            assert set(FIG7_COMPONENTS) <= set(row)
            assert row["total"] == pytest.approx(
                sum(row[c] for c in FIG7_COMPONENTS), rel=1e-6
            )
        # The private design is the normalisation baseline: total == 1.
        for row in rows:
            if row["design"] == "P":
                assert row["total"] == pytest.approx(1.0)

    def test_fig8_rows_nonnegative(self, small_suite):
        for row in fig8_shared_data_cpi(small_suite):
            assert row["l2_shared_load"] >= 0
            assert row["l2_shared_load_coherence"] >= 0
            assert row["l1_to_l1"] >= 0

    def test_fig8_only_directory_designs_have_coherence(self, small_suite):
        for row in fig8_shared_data_cpi(small_suite):
            if row["design"] in ("S", "R", "I"):
                assert row["l2_shared_load_coherence"] == 0.0

    def test_fig9_and_fig10_rows(self, small_suite):
        for rows in (fig9_private_data_cpi(small_suite), fig10_instruction_cpi(small_suite)):
            assert len(rows) == 8
            assert all(row["normalized_cpi"] >= 0 for row in rows)

    def test_cluster_sweep_normalised_to_size1(self, small_suite):
        rows = cluster_size_sweep(small_suite)
        for row in rows:
            if row["cluster_size"] == 1:
                assert row["total"] == pytest.approx(1.0)

    def test_cluster_sweep_requires_sweep_data(self):
        empty = EvaluationSuite()
        with pytest.raises(SimulationError):
            cluster_size_sweep(empty)

    def test_fig12_speedups(self, small_suite):
        rows = fig12_speedups(small_suite)
        by_key = {(r["workload"], r["design"]): r for r in rows}
        assert by_key[("mix", "P")]["speedup"] == pytest.approx(0.0)
        assert all(r["ci_half_width"] >= 0 for r in rows)

    def test_headline_numbers_fields(self, small_suite):
        numbers = headline_numbers(small_suite)
        assert set(numbers) == {
            "avg_speedup_over_private",
            "max_speedup_over_private",
            "avg_speedup_over_private_server",
            "avg_speedup_over_shared",
            "avg_speedup_over_shared_multiprogrammed",
            "avg_gap_to_ideal",
        }
        assert numbers["max_speedup_over_private"] >= numbers["avg_speedup_over_private"]

    def test_workload_aversion_labels(self, small_suite):
        aversion = workload_aversion(small_suite)
        assert set(aversion) == {"oltp-db2", "mix"}
        assert all(v in ("private-averse", "shared-averse") for v in aversion.values())


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "longer"}]
        text = format_table(rows, title="demo", precision=2)
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.23" in text and "longer" in text
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_percentage_map(self):
        text = format_percentage_map({"speedup": 0.14}, title="headline")
        assert "14.00%" in text and "headline" in text
