"""Tests for cluster abstractions and the placement policy."""

import pytest

from repro.core.clusters import (
    Cluster,
    ClusterType,
    FixedBoundaryCluster,
    FixedCenterCluster,
    partition_into_fixed_boundary,
    single_tile_cluster,
    validate_overlapping_capacity,
    whole_chip_cluster,
)
from repro.core.indexing import StandardInterleaver
from repro.core.placement import PlacementPolicy
from repro.core.rotational import RotationalInterleaver
from repro.errors import ClusterError
from repro.interconnect.topology import FoldedTorus2D
from repro.osmodel.page_table import PageClass


def torus16() -> FoldedTorus2D:
    return FoldedTorus2D(4, 4)


class TestCluster:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ClusterError):
            Cluster(cluster_type=ClusterType.FIXED_BOUNDARY, members=(0, 1, 2))

    def test_members_must_be_distinct(self):
        with pytest.raises(ClusterError):
            Cluster(cluster_type=ClusterType.FIXED_BOUNDARY, members=(0, 0))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            Cluster(cluster_type=ClusterType.FIXED_BOUNDARY, members=())

    def test_slice_for_wraps_on_size(self):
        cluster = Cluster(cluster_type=ClusterType.FIXED_BOUNDARY, members=(3, 7))
        assert cluster.slice_for(0) == 3
        assert cluster.slice_for(1) == 7
        assert cluster.slice_for(2) == 3

    def test_contains(self):
        cluster = single_tile_cluster(5)
        assert 5 in cluster and 4 not in cluster
        assert cluster.size == 1


class TestFixedCenterCluster:
    def test_members_ordered_by_interleave_bits(self):
        interleaver = RotationalInterleaver(torus16(), 4)
        cluster = FixedCenterCluster.around(interleaver, center=5)
        for bits in range(4):
            target = cluster.slice_for(bits)
            assert interleaver.stored_bits(target) == bits
        assert cluster.center == 5
        assert 5 in cluster

    def test_overlapping_clusters_cover_every_tile_n_times(self):
        interleaver = RotationalInterleaver(torus16(), 4)
        clusters = [FixedCenterCluster.around(interleaver, c) for c in range(16)]
        counts = validate_overlapping_capacity(clusters, 16)
        assert all(count == 4 for count in counts.values())


class TestFixedBoundaryCluster:
    def test_rectangle_members(self):
        cluster = FixedBoundaryCluster.rectangle(
            torus16(), origin_row=0, origin_col=0, rows=2, cols=2
        )
        assert set(cluster.members) == {0, 1, 4, 5}

    def test_rectangle_must_fit_on_chip(self):
        with pytest.raises(ClusterError):
            FixedBoundaryCluster.rectangle(
                torus16(), origin_row=3, origin_col=3, rows=2, cols=2
            )

    def test_partition_covers_chip_exactly_once(self):
        clusters = partition_into_fixed_boundary(torus16(), 2, 2)
        assert len(clusters) == 4
        counts = validate_overlapping_capacity(clusters, 16)
        assert all(count == 1 for count in counts.values())

    def test_partition_requires_divisible_dimensions(self):
        with pytest.raises(ClusterError):
            partition_into_fixed_boundary(torus16(), 3, 2)


class TestWholeChipCluster:
    def test_whole_chip_is_identity_interleaving(self):
        cluster = whole_chip_cluster(16)
        assert cluster.size == 16
        assert all(cluster.slice_for(i) == i for i in range(16))


class TestStandardInterleaver:
    def test_target_uses_bits_above_set_index(self):
        cluster = whole_chip_cluster(16)
        interleaver = StandardInterleaver(cluster, set_index_bits=5)
        assert interleaver.target_slice(0) == 0
        assert interleaver.target_slice(1 << 5) == 1
        assert interleaver.target_slice(15 << 5) == 15
        assert interleaver.target_slice(16 << 5) == 0

    def test_unique_mapping(self):
        cluster = whole_chip_cluster(4)
        interleaver = StandardInterleaver(cluster, set_index_bits=2)
        assert interleaver.blocks_map_uniquely(list(range(256)))

    def test_negative_set_bits_rejected(self):
        with pytest.raises(ClusterError):
            StandardInterleaver(whole_chip_cluster(4), set_index_bits=-1)


class TestPlacementPolicy:
    def make_policy(self, cluster_size: int = 4) -> PlacementPolicy:
        return PlacementPolicy(
            torus16(), set_index_bits=5, instruction_cluster_size=cluster_size
        )

    def test_private_data_always_local(self):
        policy = self.make_policy()
        for core in range(16):
            for block in (0, 97, 4095):
                decision = policy.place(core, block, PageClass.PRIVATE)
                assert decision.target_slice == core
                assert decision.is_local

    def test_shared_data_has_single_home_for_all_cores(self):
        policy = self.make_policy()
        for block in (3, 40, 555):
            targets = {
                policy.place(core, block, PageClass.SHARED).target_slice
                for core in range(16)
            }
            assert len(targets) == 1

    def test_instruction_lookup_is_within_one_hop(self):
        policy = self.make_policy()
        torus = torus16()
        for core in range(16):
            for block in range(64):
                decision = policy.place(core, block, PageClass.INSTRUCTION)
                assert torus.hop_distance(core, decision.target_slice) <= 1

    def test_instruction_cluster_size_one_means_local(self):
        policy = self.make_policy(cluster_size=1)
        for core in (0, 7, 15):
            decision = policy.place(core, 123, PageClass.INSTRUCTION)
            assert decision.target_slice == core

    def test_rids_exposed(self):
        assert self.make_policy().rids is not None
        assert self.make_policy(cluster_size=1).rids is None

    def test_rejects_unsupported_private_cluster(self):
        with pytest.raises(ClusterError):
            PlacementPolicy(torus16(), set_index_bits=5, private_cluster_size=4)

    def test_rejects_partial_shared_cluster(self):
        with pytest.raises(ClusterError):
            PlacementPolicy(torus16(), set_index_bits=5, shared_cluster_size=8)
