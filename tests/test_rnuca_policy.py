"""Tests for the end-to-end R-NUCA policy (classification + placement)."""

import pytest

from repro.cmp.config import SystemConfig
from repro.core.rnuca import RNucaConfig, RNucaPolicy
from repro.errors import ConfigurationError
from repro.osmodel.page_table import PageClass


@pytest.fixture
def policy():
    return RNucaPolicy(SystemConfig.server_16core())


class TestRNucaConfig:
    def test_defaults(self):
        config = RNucaConfig()
        assert config.instruction_cluster_size == 4

    def test_rejects_non_power_of_two_cluster(self):
        with pytest.raises(ConfigurationError):
            RNucaConfig(instruction_cluster_size=6)


class TestRNucaPolicy:
    def test_instruction_lookup_nearby(self, policy):
        lookup = policy.lookup(3, 0x1234_0000, instruction=True)
        assert lookup.page_class is PageClass.INSTRUCTION
        assert policy.topology.hop_distance(3, lookup.target_slice) <= 1

    def test_private_then_shared_transition(self, policy):
        address = 0x8000_0000
        first = policy.lookup(0, address, instruction=False)
        assert first.page_class is PageClass.PRIVATE
        assert first.target_slice == 0
        second = policy.lookup(5, address, instruction=False)
        assert second.page_class is PageClass.SHARED
        # Once shared, every core agrees on the same interleaved slice.
        targets = {
            policy.lookup(core, address, instruction=False).target_slice
            for core in range(16)
        }
        assert len(targets) == 1

    def test_shared_block_single_location_obviates_coherence(self, policy):
        """Each modifiable block maps to exactly one slice in the aggregate cache."""
        base = 0x4000_0000
        for offset in range(0, 64 * 64, 64):
            address = base + offset
            policy.lookup(0, address, instruction=False)
            policy.lookup(1, address, instruction=False)
            targets = {
                policy.lookup(core, address, instruction=False).target_slice
                for core in range(16)
            }
            assert len(targets) == 1

    def test_shootdown_callback_invoked_on_reclassification(self, policy):
        calls = []
        address = 0x9000_0000
        policy.lookup(2, address, instruction=False)
        policy.lookup(3, address, instruction=False, shootdown=lambda p, o: calls.append((p, o)) or 0)
        assert calls == [(policy.page_number(address), 2)]

    def test_statistics(self, policy):
        policy.lookup(0, 0x100, instruction=True)
        policy.lookup(0, 0x8000_0000, instruction=False)
        assert policy.lookups == 2
        assert policy.lookups_by_class[PageClass.INSTRUCTION] == 1
        assert policy.lookups_by_class[PageClass.PRIVATE] == 1
        assert 0.0 <= policy.local_lookup_fraction <= 1.0

    def test_describe_mentions_cluster_sizes(self, policy):
        text = policy.describe()
        assert "size-4" in text
        assert "size-16" in text

    def test_rids_published(self, policy):
        rids = policy.rids
        assert rids is not None and len(rids) == 16
        assert sorted(set(rids)) == [0, 1, 2, 3]

    def test_block_and_page_helpers(self, policy):
        assert policy.block_address(128) == 2
        assert policy.page_number(policy.system_config.page_size) == 1

    def test_scaled_config_also_works(self):
        policy = RNucaPolicy(SystemConfig.multiprogrammed_8core().scaled(64))
        lookup = policy.lookup(1, 0x2000, instruction=True)
        assert lookup.target_slice in range(8)


class TestLookupFastParity:
    def test_lookup_fast_matches_lookup(self):
        """lookup_fast must mirror lookup: same targets, classes, counters.

        Two fresh policies replay the same access sequence, one through each
        API; placement, classification and every statistic must agree.
        """
        config = SystemConfig.server_16core()
        slow = RNucaPolicy(config)
        fast = RNucaPolicy(config)
        accesses = [
            (core, address, instruction)
            for core in (0, 3, 7, 15)
            for address, instruction in (
                (0x1234_0000, True),
                (0x8000_0000 + core * 0x1000, False),
                (0x4000_0000, False),  # same page from many cores -> shared
            )
        ]
        for core, address, instruction in accesses:
            reference = slow.lookup(core, address, instruction=instruction)
            target, page_class, kind, latency = fast.lookup_fast(
                core,
                slow.block_address(address),
                slow.page_number(address),
                instruction,
            )
            assert target == reference.target_slice
            assert page_class is reference.page_class
            assert kind == reference.classification.kind
            assert latency == reference.classification.latency_cycles
        assert fast.lookups == slow.lookups
        assert fast.local_lookups == slow.local_lookups
        assert fast.lookups_by_class == slow.lookups_by_class
        assert fast.classifier.reclassifications == slow.classifier.reclassifications
