"""Behavioural tests for the five cache designs."""

import pytest

from repro.cache.block import AccessType
from repro.cmp.chip import TiledChip
from repro.designs import DESIGNS, build_design
from repro.designs.asr import STATIC_ASR_LEVELS, AsrDesign
from repro.designs.base import L2, OFF_CHIP, L2Access
from repro.designs.ideal import IdealDesign
from repro.designs.private import PrivateDesign
from repro.designs.rnuca_design import RNucaDesign
from repro.designs.shared import SharedDesign
from repro.osmodel.page_table import PageClass


def make_access(chip, core, byte_address, kind=AccessType.LOAD, true_class="shared_rw"):
    return L2Access(
        core=core,
        block_address=chip.block_address(byte_address),
        byte_address=byte_address,
        access_type=kind,
        thread_id=core,
        true_class=true_class,
    )


class TestFactory:
    def test_build_by_letter_and_name(self, config16):
        chip = TiledChip(config16)
        assert isinstance(build_design("P", chip), PrivateDesign)
        assert isinstance(build_design("shared", TiledChip(config16)), SharedDesign)
        assert isinstance(build_design("r-nuca", TiledChip(config16)), RNucaDesign)
        assert isinstance(build_design("ideal", TiledChip(config16)), IdealDesign)

    def test_unknown_design_rejected(self, config16):
        with pytest.raises(ValueError):
            build_design("quantum", TiledChip(config16))

    def test_letters_match_paper(self):
        assert set(DESIGNS) == {"P", "A", "S", "R", "I"}


class TestSharedDesign:
    def test_miss_then_remote_hit(self, chip16):
        design = SharedDesign(chip16)
        address = 0x12340
        core = 0
        first = design.access(make_access(chip16, core, address))
        assert first.offchip
        second = design.access(make_access(chip16, core, address))
        assert not second.offchip
        home = chip16.home_slice(chip16.block_address(address))
        assert second.target_slice == home
        expected = "l2_local" if home == core else "l2_remote"
        assert second.hit_where == expected

    def test_single_copy_across_all_requestors(self, chip16):
        """Address interleaving stores each block exactly once on chip."""
        design = SharedDesign(chip16)
        address = 0x55500
        for core in range(chip16.num_tiles):
            design.access(make_access(chip16, core, address))
        resident = sum(
            1 for tile in chip16.tiles if tile.l2.peek(chip16.block_address(address))
        )
        assert resident == 1

    def test_remote_access_costs_more_than_local(self, chip16):
        design = SharedDesign(chip16)
        address = 0x400
        home = chip16.home_slice(chip16.block_address(address))
        remote_core = (home + 5) % chip16.num_tiles
        design.access(make_access(chip16, home, address))
        local_hit = design.access(make_access(chip16, home, address))
        remote_hit = design.access(make_access(chip16, remote_core, address))
        assert remote_hit.components[L2] > local_hit.components[L2]

    def test_dirty_remote_l1_triggers_l1_to_l1(self, chip16):
        design = SharedDesign(chip16)
        address = 0x9980
        design.access(make_access(chip16, 1, address, AccessType.STORE))
        outcome = design.access(make_access(chip16, 2, address, AccessType.LOAD))
        assert outcome.hit_where == "l1_remote"
        assert outcome.components.get("l1_to_l1", 0) > 0

    def test_write_invalidates_remote_l1_copies(self, chip16):
        design = SharedDesign(chip16)
        address = 0x7700
        design.access(make_access(chip16, 3, address, AccessType.LOAD))
        design.access(make_access(chip16, 4, address, AccessType.STORE))
        block = chip16.block_address(address)
        assert 3 not in design.l1.holders(block)


class TestPrivateDesign:
    def test_fill_is_local(self, chip16):
        design = PrivateDesign(chip16)
        address = 0x3300
        core = 6
        design.access(make_access(chip16, core, address, true_class="private"))
        assert chip16.tile(core).l2.peek(chip16.block_address(address)) is not None

    def test_local_hit_after_fill(self, chip16):
        design = PrivateDesign(chip16)
        address = 0x3340
        outcome1 = design.access(make_access(chip16, 2, address, true_class="private"))
        outcome2 = design.access(make_access(chip16, 2, address, true_class="private"))
        assert outcome1.offchip and not outcome2.offchip
        assert outcome2.hit_where == "l2_local"
        assert outcome2.latency < outcome1.latency

    def test_remote_copy_serviced_by_coherence_transfer(self, chip16):
        design = PrivateDesign(chip16)
        address = 0x11000
        design.access(make_access(chip16, 0, address))
        outcome = design.access(make_access(chip16, 9, address))
        assert outcome.hit_where in ("l2_remote", "l1_remote")
        assert outcome.coherence
        assert not outcome.offchip

    def test_replication_across_private_slices(self, chip16):
        """Shared blocks are independently replicated in each private slice."""
        design = PrivateDesign(chip16)
        address = 0x22000
        for core in range(4):
            design.access(make_access(chip16, core, address))
        block = chip16.block_address(address)
        resident = sum(1 for t in chip16.tiles if t.l2.peek(block) is not None)
        assert resident == 4

    def test_write_invalidates_all_replicas(self, chip16):
        design = PrivateDesign(chip16)
        address = 0x23000
        block = chip16.block_address(address)
        for core in range(4):
            design.access(make_access(chip16, core, address))
        design.access(make_access(chip16, 5, address, AccessType.STORE))
        resident = [t.tile_id for t in chip16.tiles if t.l2.peek(block) is not None]
        assert resident == [5]

    def test_directory_tracks_holders(self, chip16):
        design = PrivateDesign(chip16)
        address = 0x24000
        block = chip16.block_address(address)
        design.access(make_access(chip16, 1, address))
        home = chip16.home_slice(block)
        entry = chip16.tile(home).directory.peek(block)
        assert entry is not None and 1 in entry.copy_holders()

    def test_coherence_transfer_slower_than_local_hit(self, chip16):
        design = PrivateDesign(chip16)
        address = 0x25000
        design.access(make_access(chip16, 0, address))
        local = design.access(make_access(chip16, 0, address))
        remote = design.access(make_access(chip16, 8, address))
        assert remote.latency > local.latency


class TestAsrDesign:
    def test_static_levels(self):
        assert STATIC_ASR_LEVELS == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_invalid_probability_rejected(self, chip16):
        with pytest.raises(ValueError):
            AsrDesign(chip16, allocation_probability=1.5)

    def test_adaptive_flag_and_name(self, chip16):
        assert AsrDesign(chip16).adaptive
        assert "0.25" in AsrDesign(chip16, allocation_probability=0.25).name

    def test_probability_zero_never_replicates(self, config16):
        chip = TiledChip(config16)
        design = AsrDesign(chip, allocation_probability=0.0, seed=1)
        self._drive_shared_evictions(chip, design)
        assert design.replications == 0

    def test_probability_one_always_replicates(self, config16):
        chip = TiledChip(config16)
        design = AsrDesign(chip, allocation_probability=1.0, seed=1)
        self._drive_shared_evictions(chip, design)
        assert design.replication_skips == 0
        assert design.replications > 0

    @staticmethod
    def _drive_shared_evictions(chip, design):
        """Touch many shared blocks from two cores to force L1 evictions."""
        for i in range(400):
            address = 0x50000 + i * 64
            design.access(make_access(chip, 0, address))
            design.access(make_access(chip, 1, address))

    def test_behaves_like_private_for_private_data(self, config16):
        chip = TiledChip(config16)
        design = AsrDesign(chip, allocation_probability=0.5)
        address = 0x66000
        design.access(make_access(chip, 3, address, true_class="private"))
        assert chip.tile(3).l2.peek(chip.block_address(address)) is not None


class TestRNucaDesign:
    def test_publishes_rids(self, chip16):
        design = RNucaDesign(chip16)
        rids = [tile.rid for tile in chip16.tiles]
        assert sorted(set(rids)) == [0, 1, 2, 3]
        assert design.instruction_cluster_size == 4

    def test_private_data_stays_local(self, chip16):
        design = RNucaDesign(chip16)
        address = 0x81000
        outcome = design.access(
            make_access(chip16, 4, address, true_class="private")
        )
        assert outcome.target_slice == 4
        assert outcome.page_class is PageClass.PRIVATE

    def test_instructions_within_one_hop(self, chip16):
        design = RNucaDesign(chip16)
        for core in range(16):
            outcome = design.access(
                make_access(
                    chip16, core, 0x90000, AccessType.INSTRUCTION, true_class="instruction"
                )
            )
            assert chip16.distance(core, outcome.target_slice) <= 1
            assert outcome.page_class is PageClass.INSTRUCTION

    def test_instruction_replication_across_clusters(self, chip16):
        """Distant cores build independent replicas; nearby cores share one."""
        design = RNucaDesign(chip16)
        address = 0x90040
        block = chip16.block_address(address)
        for core in range(16):
            design.access(
                make_access(chip16, core, address, AccessType.INSTRUCTION, "instruction")
            )
        resident = sum(1 for t in chip16.tiles if t.l2.peek(block) is not None)
        assert 1 < resident <= 4  # replicated per cluster, not per tile

    def test_shared_data_single_location_no_l2_coherence(self, chip16):
        design = RNucaDesign(chip16)
        address = 0xA0000
        block = chip16.block_address(address)
        design.access(make_access(chip16, 0, address))
        design.access(make_access(chip16, 1, address))
        for core in range(16):
            design.access(make_access(chip16, core, address))
        resident = sum(1 for t in chip16.tiles if t.l2.peek(block) is not None)
        assert resident == 1

    def test_reclassification_charges_latency_and_shoots_down(self, chip16):
        design = RNucaDesign(chip16)
        address = 0xB0000
        design.access(make_access(chip16, 2, address, true_class="private"))
        outcome = design.access(make_access(chip16, 7, address, true_class="shared_rw"))
        assert outcome.components.get("reclassification", 0) > 0
        # The previous owner's slice no longer caches the page's blocks.
        assert chip16.tile(2).l2.peek(chip16.block_address(address)) is None

    def test_misclassification_tracked(self, chip16):
        design = RNucaDesign(chip16)
        address = 0xC0000
        # Truth says shared, but the first touch classifies the page private.
        design.access(make_access(chip16, 0, address, true_class="shared_rw"))
        assert design.misclassified_accesses >= 1
        assert 0 <= design.misclassification_rate <= 1

    def test_cluster_size_configurable(self, chip16, config16):
        from repro.core.rnuca import RNucaConfig

        design = RNucaDesign(chip16, rnuca_config=RNucaConfig(instruction_cluster_size=16))
        assert design.instruction_cluster_size == 16
        outcome = design.access(
            make_access(chip16, 0, 0xD0000, AccessType.INSTRUCTION, "instruction")
        )
        assert 0 <= outcome.target_slice < config16.num_tiles


class TestIdealDesign:
    def test_no_network_cost(self, chip16):
        design = IdealDesign(chip16)
        assert design.network_round_trip(0, 15) == 0

    def test_hit_latency_is_local_slice_latency(self, chip16, config16):
        design = IdealDesign(chip16)
        address = 0xE0000
        design.access(make_access(chip16, 0, address))
        outcome = design.access(make_access(chip16, 9, address))
        assert not outcome.offchip
        assert outcome.components[L2] == config16.l2_slice.hit_latency

    def test_capacity_matches_shared_design(self, chip16):
        """The ideal design is a shared organisation: one copy per block."""
        design = IdealDesign(chip16)
        address = 0xF0000
        block = chip16.block_address(address)
        for core in range(8):
            design.access(make_access(chip16, core, address))
        resident = sum(1 for t in chip16.tiles if t.l2.peek(block) is not None)
        assert resident == 1

    def test_offchip_component_has_no_onchip_traversal(self, chip16, config16):
        design = IdealDesign(chip16)
        outcome = design.access(make_access(chip16, 0, 0xF1000))
        assert outcome.offchip
        assert outcome.components[OFF_CHIP] == config16.memory_latency_cycles
