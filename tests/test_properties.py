"""Cross-cutting property-based tests on the core invariants of the paper.

These hypothesis tests drive the designs and the R-NUCA mechanisms with
arbitrary access sequences and check the invariants the paper's correctness
argument rests on:

* under the shared, ideal and R-NUCA designs every modifiable (data) block
  has at most one copy in the aggregate L2, which is what makes L2 coherence
  unnecessary;
* R-NUCA resolves every access with exactly one slice probe, and instruction
  lookups never leave the fixed-center cluster;
* the OS page classification never "forgets" a shared classification (a page
  never silently reverts to private without a migration event);
* the CPI accounting is conservative: total CPI equals the sum of its
  components for any access mix.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import AccessType
from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.core.rnuca import RNucaPolicy
from repro.designs import build_design
from repro.designs.base import L2Access
from repro.osmodel.classifier import PageClassifier
from repro.osmodel.page_table import PageClass
from repro.sim.stats import SimulationStats
from repro.workloads.trace import TraceRecord

from .conftest import TEST_SCALE


def scaled_config() -> SystemConfig:
    return SystemConfig.server_16core().scaled(TEST_SCALE)


#: An access is (core, block index, is_write).
ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=255),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def _to_l2_access(chip: TiledChip, core: int, block_index: int, write: bool) -> L2Access:
    byte_address = block_index * chip.config.block_size * 131 + (1 << 22)
    return L2Access(
        core=core,
        block_address=chip.block_address(byte_address),
        byte_address=byte_address,
        access_type=AccessType.STORE if write else AccessType.LOAD,
        thread_id=core,
        true_class="shared_rw",
    )


class TestSingleCopyInvariant:
    @given(accesses=ACCESSES)
    @settings(max_examples=15, deadline=None)
    def test_shared_design_never_replicates(self, accesses):
        chip = TiledChip(scaled_config())
        design = build_design("S", chip)
        touched = set()
        for core, block_index, write in accesses:
            access = _to_l2_access(chip, core, block_index, write)
            design.access(access)
            touched.add(access.block_address)
        for block in touched:
            copies = sum(1 for t in chip.tiles if t.l2.peek(block) is not None)
            assert copies <= 1

    @given(accesses=ACCESSES)
    @settings(max_examples=15, deadline=None)
    def test_rnuca_data_blocks_have_one_location(self, accesses):
        chip = TiledChip(scaled_config())
        design = build_design("R", chip)
        touched = set()
        for core, block_index, write in accesses:
            access = _to_l2_access(chip, core, block_index, write)
            design.access(access)
            touched.add(access.block_address)
        for block in touched:
            copies = sum(1 for t in chip.tiles if t.l2.peek(block) is not None)
            assert copies <= 1

    @given(accesses=ACCESSES)
    @settings(max_examples=10, deadline=None)
    def test_private_design_write_leaves_single_writable_copy(self, accesses):
        chip = TiledChip(scaled_config())
        design = build_design("P", chip)
        last_writer: dict[int, int] = {}
        for core, block_index, write in accesses:
            access = _to_l2_access(chip, core, block_index, write)
            design.access(access)
            if write:
                last_writer[access.block_address] = core
        for block, writer in last_writer.items():
            holders = [t.tile_id for t in chip.tiles if t.l2.peek(block) is not None]
            # After the final write, the writer is the only L2 holder until
            # somebody else reads the block again.
            reread = any(
                _to_l2_access(chip, c, b, w).block_address == block and not w and c != writer
                for c, b, w in accesses[::-1]
            )
            if not reread:
                assert holders == [writer] or holders == []


class TestRNucaLookupProperties:
    @given(
        core=st.integers(min_value=0, max_value=15),
        page=st.integers(min_value=0, max_value=4095),
        offset=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_instruction_lookup_stays_in_cluster(self, core, page, offset):
        config = SystemConfig.server_16core()
        policy = RNucaPolicy(config)
        address = page * config.page_size + offset * config.block_size
        lookup = policy.lookup(core, address, instruction=True)
        cluster = policy.placement.instruction_cluster(core)
        assert lookup.target_slice in cluster.members
        assert policy.topology.hop_distance(core, lookup.target_slice) <= 1

    @given(
        first_core=st.integers(min_value=0, max_value=15),
        second_core=st.integers(min_value=0, max_value=15),
        page=st.integers(min_value=16, max_value=2047),
    )
    @settings(max_examples=40, deadline=None)
    def test_classification_is_monotone(self, first_core, second_core, page):
        """private -> shared transitions happen at most once and never revert."""
        classifier = PageClassifier(num_cores=16)
        classifier.classify_access(first_core, page, instruction=False)
        classifier.classify_access(second_core, page, instruction=False)
        expected = (
            PageClass.PRIVATE if first_core == second_core else PageClass.SHARED
        )
        assert classifier.classification_of(page) is expected
        # Re-touching by the original core never flips a shared page back.
        classifier.classify_access(first_core, page, instruction=False)
        assert classifier.classification_of(page) is expected
        assert classifier.reclassifications <= 1


class TestAccountingProperties:
    @given(
        records=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=1, max_value=60),
                st.sampled_from(["instruction", "private", "shared_rw"]),
                st.floats(min_value=0.0, max_value=200.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_cpi_equals_sum_of_components(self, records):
        from repro.designs.base import L2, AccessOutcome

        stats = SimulationStats()
        for core, instructions, true_class, latency in records:
            record = TraceRecord(
                core=core,
                access_type=(
                    AccessType.INSTRUCTION
                    if true_class == "instruction"
                    else AccessType.LOAD
                ),
                address=64 * core,
                instructions=instructions,
                true_class=true_class,
            )
            stats.record(record, AccessOutcome(components={L2: latency}), busy_cycles=instructions)
        breakdown = stats.cpi_breakdown()
        assert abs(stats.cpi - sum(breakdown.values())) < 1e-9
        class_total = sum(stats.class_cpi(c) for c in ("instruction", "private", "shared"))
        assert abs(class_total - (stats.cpi - stats.component_cpi("busy"))) < 1e-9


class TestThreadSentinelContract:
    """``thread_id == core`` columns replay exactly like the NO_THREAD sentinel.

    The dynamics subsystem makes thread ids load-bearing (migrated threads
    carry their identity to new cores), so this pins the pre-existing
    contract the static generator relies on: an explicit one-thread-per-core
    column is indistinguishable from the sentinel everywhere in the replay
    path (hot columns, classifier thread attribution, seed conversion).
    """

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),  # core
                st.integers(min_value=0, max_value=48),  # page
                st.integers(min_value=0, max_value=3),  # block offset in page
                st.sampled_from(["instruction", "private", "shared_rw"]),
                st.booleans(),  # write (data only)
            ),
            min_size=8,
            max_size=120,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_explicit_thread_ids_replay_identically(self, rows):
        import numpy as np

        from repro.sim.engine import TraceSimulator
        from repro.sim.latency import CpiModel
        from repro.workloads.spec import get_workload
        from repro.workloads.trace import (
            INSTRUCTION_CODE,
            LOAD_CODE,
            NO_THREAD,
            STORE_CODE,
            Trace,
            TraceColumns,
        )

        config = scaled_config()
        table = (None, "instruction", "private", "shared_rw")
        codes = {"instruction": 1, "private": 2, "shared_rw": 3}

        def columns(threads: "np.ndarray") -> TraceColumns:
            return TraceColumns(
                core=cores,
                access_type=kinds,
                address=addresses,
                instructions=np.full(len(rows), 20, dtype=np.int64),
                thread_id=threads,
                true_class=labels,
                class_table=table,
            )

        cores = np.array([r[0] for r in rows], dtype=np.int64)
        addresses = np.array(
            [
                (1 << 22) + page * config.page_size + offset * config.block_size
                for _, page, offset, _, _ in rows
            ],
            dtype=np.int64,
        )
        kinds = np.array(
            [
                INSTRUCTION_CODE
                if cls == "instruction"
                else (STORE_CODE if write else LOAD_CODE)
                for _, _, _, cls, write in rows
            ],
            dtype=np.int8,
        )
        labels = np.array([codes[r[3]] for r in rows], dtype=np.int16)

        sentinel = Trace.from_columns(
            columns(np.full(len(rows), NO_THREAD, dtype=np.int64)),
            workload="prop", num_cores=config.num_tiles,
        )
        explicit = Trace.from_columns(
            columns(cores.copy()), workload="prop", num_cores=config.num_tiles
        )

        spec = get_workload("oltp-db2")
        results = []
        for trace in (sentinel, explicit):
            chip = TiledChip(config)
            design = build_design("R", chip)
            simulator = TraceSimulator(design, CpiModel.for_workload(spec))
            results.append(simulator.run(trace))
        assert results[0].stats.to_dict() == results[1].stats.to_dict()
        assert results[0].cpi == results[1].cpi
