"""Docs-surface contracts: the documentation cannot drift from the code.

Three cross-checks keep ``docs/`` honest:

* every markdown link in ``docs/``, ``ROADMAP.md`` and ``CHANGES.md``
  resolves (same checker the CI docs job runs);
* every ``RNUCA_*`` environment variable grep-able in ``src/`` is
  documented in ``docs/CLI.md``;
* everything ``repro list`` advertises — workloads, designs, engines,
  schedulers, scenario variants — appears in ``docs/CLI.md``.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS = REPO_ROOT / "docs"


@pytest.fixture(scope="module")
def cli_md() -> str:
    return (DOCS / "CLI.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def architecture_md() -> str:
    return (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")


def test_docs_files_exist():
    assert (DOCS / "ARCHITECTURE.md").is_file()
    assert (DOCS / "CLI.md").is_file()


def test_markdown_links_resolve():
    """Same check as the CI docs job, enforced in tier 1."""
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "check_links.py"),
            str(DOCS),
            str(REPO_ROOT / "ROADMAP.md"),
            str(REPO_ROOT / "CHANGES.md"),
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr + result.stdout


def test_every_registered_knob_is_documented(cli_md):
    """Every knob in ``repro.knobs.REGISTRY`` must appear in docs/CLI.md."""
    from repro import knobs

    assert knobs.REGISTRY  # the registry itself must not silently go empty
    undocumented = {name for name in knobs.REGISTRY if name not in cli_md}
    assert not undocumented, f"env knobs missing from docs/CLI.md: {sorted(undocumented)}"


def test_every_env_knob_in_src_is_registered():
    """grep RNUCA_* over src/ -> every hit must be a registered knob.

    The registry is the single place environment variables are declared;
    a name that greps in ``src/`` but is absent from ``REGISTRY`` is a
    knob read that bypassed :mod:`repro.knobs`.
    """
    from repro import knobs

    seen = set()
    for path in (REPO_ROOT / "src").rglob("*.py"):
        seen.update(re.findall(r"RNUCA_[A-Z_]+", path.read_text(encoding="utf-8")))
    assert seen  # the grep itself must not silently go empty
    unregistered = seen - set(knobs.REGISTRY)
    assert not unregistered, f"env vars not in repro.knobs.REGISTRY: {sorted(unregistered)}"


@pytest.fixture(scope="module")
def repro_list_output() -> str:
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["list"]) == 0
    return buffer.getvalue()


def test_cli_md_covers_repro_list_catalogue(cli_md, repro_list_output):
    """Names the CLI advertises must be findable in the reference doc."""
    from repro.designs import DESIGNS
    from repro.dynamics.adaptive import SCHEDULERS
    from repro.dynamics.scenarios import DYNAMIC_VARIANTS
    from repro.sim.engine import ENGINES
    from repro.workloads.spec import WORKLOADS

    for workload in WORKLOADS:
        assert workload in repro_list_output
    for group in (WORKLOADS, DESIGNS, ENGINES, SCHEDULERS, DYNAMIC_VARIANTS):
        for name in group:
            assert name in repro_list_output, f"{name} missing from `repro list`"
    # The reference documents every variant, engine and scheduler by name.
    for name in (*DYNAMIC_VARIANTS, *ENGINES, *SCHEDULERS):
        assert name in cli_md, f"{name} missing from docs/CLI.md"


def test_cli_md_documents_every_subcommand(cli_md):
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0]))
    )
    for name in subparsers.choices:
        assert f"repro {name}" in cli_md, f"subcommand {name} missing from docs/CLI.md"


def test_architecture_md_names_every_package(architecture_md):
    """The layered map must cover every repro.* package on disk."""
    packages = sorted(
        path.parent.name
        for path in (REPO_ROOT / "src" / "repro").glob("*/__init__.py")
    )
    assert len(packages) >= 11
    for package in packages:
        assert f"repro.{package}" in architecture_md, (
            f"package repro.{package} missing from docs/ARCHITECTURE.md"
        )
    # The feedback loop and the content-addressing contracts have sections.
    assert "feedback loop" in architecture_md.lower()
    assert "content-addressing" in architecture_md.lower()
