"""Tests for the dynamic-behaviour subsystem (``repro.dynamics``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.dynamics import (
    DynamicTraceGenerator,
    DynamicWorkloadSpec,
    MigrationEvent,
    MigrationSchedule,
    PhaseSpec,
    SharingOnset,
    dynamic_workload_names,
    is_dynamic_workload,
    resolve_dynamic,
)
from repro.errors import ConfigurationError, TraceError
from repro.sim.engine import TraceSimulator, simulate_workload
from repro.sim.latency import CpiModel
from repro.sim.stats import SimulationStats
from repro.workloads.spec import get_workload
from repro.workloads.trace import (
    MIGRATION_EVENT,
    PHASE_EVENT,
    SHARING_ONSET_EVENT,
    Trace,
    TraceEvents,
)

from .conftest import TEST_SCALE

RECORDS = 6000


def server_config() -> SystemConfig:
    return SystemConfig.server_16core().scaled(TEST_SCALE)


@pytest.fixture(scope="module")
def migrate_trace():
    dyn = resolve_dynamic("oltp-db2:migrate")
    config = server_config()
    return dyn, config, DynamicTraceGenerator(
        dyn, config, seed=3, scale=TEST_SCALE
    ).generate(RECORDS)


# --------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------- #
class TestSpecs:
    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            PhaseSpec(name="p", duration=0)
        with pytest.raises(ConfigurationError):
            PhaseSpec(name="p", duration=10, mix={"bogus": 0.5})
        with pytest.raises(ConfigurationError):
            PhaseSpec(name="p", duration=10, mix={"private": 1.5})

    def test_phase_mix_renormalises(self):
        base = get_workload("oltp-db2")
        probs = PhaseSpec(
            name="p", duration=10, mix={"private": 0.5}
        ).class_probabilities(base)
        assert probs.shape == (4,)
        assert probs.sum() == pytest.approx(1.0)
        # The private share grew relative to the base mix.
        assert probs[1] > base.private_data.fraction

    def test_schedule_event_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationEvent(at=1.0, thread_id=0, to_core=1)
        with pytest.raises(ConfigurationError):
            SharingOnset(at=0.5, victim_thread=0, region_fraction=0.0)

    def test_seeded_schedule_is_deterministic_and_moves(self):
        first = MigrationSchedule.seeded(16, 16, migrations=5, onsets=2, seed=9)
        second = MigrationSchedule.seeded(16, 16, migrations=5, onsets=2, seed=9)
        assert first == second
        assert len(first.migrations) == 5 and len(first.sharing_onsets) == 2
        # Every move is a genuine move given the tracked mapping.
        mapping = {t: t % 16 for t in range(16)}
        for event in first.migrations:
            assert event.to_core != mapping[event.thread_id]
            mapping[event.thread_id] = event.to_core

    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicWorkloadSpec(
                name="x",
                base=get_workload("mix"),
                phases=(
                    PhaseSpec(name="a", duration=10),
                    PhaseSpec(name="a", duration=10),
                ),
            )

    def test_phase_boundaries_scale_with_records(self):
        dyn = resolve_dynamic("mix:phased")
        assert dyn.phase_boundaries(6000) == [0, 2000, 4000]
        assert dyn.phase_boundaries(60) == [0, 20, 40]

    def test_static_equivalence_predicate(self):
        base = get_workload("mix")
        assert DynamicWorkloadSpec(name="x", base=base).is_static_equivalent
        assert not resolve_dynamic("mix:phased").is_static_equivalent
        assert not resolve_dynamic("mix:migrate").is_static_equivalent


# --------------------------------------------------------------------- #
# Event stream
# --------------------------------------------------------------------- #
class TestTraceEvents:
    def test_from_rows_sorts_and_validates(self):
        events = TraceEvents.from_rows([(30, PHASE_EVENT, 1, 0), (10, MIGRATION_EVENT, 2, 5)])
        assert events.record_index.tolist() == [10, 30]
        events.validate()

    def test_unsorted_events_rejected(self):
        events = TraceEvents(
            record_index=np.array([5, 1], dtype=np.int64),
            kind=np.zeros(2, dtype=np.int8),
            arg0=np.zeros(2, dtype=np.int64),
            arg1=np.zeros(2, dtype=np.int64),
        )
        with pytest.raises(TraceError):
            events.validate()

    def test_unknown_kind_rejected(self):
        events = TraceEvents(
            record_index=np.array([5], dtype=np.int64),
            kind=np.array([9], dtype=np.int8),
            arg0=np.zeros(1, dtype=np.int64),
            arg1=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(TraceError):
            events.validate()

    def test_save_load_roundtrip_preserves_events(self, tmp_path, migrate_trace):
        _, _, trace = migrate_trace
        path = tmp_path / "dyn.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.is_dynamic
        assert loaded.events.rows() == trace.events.rows()
        assert loaded.metadata["phases"] == trace.metadata["phases"]

    def test_static_trace_has_no_events(self, oltp_trace):
        assert not oltp_trace.is_dynamic
        assert len(oltp_trace.events) == 0

    def test_event_past_end_of_trace_rejected(self, oltp_trace):
        out_of_range = TraceEvents.from_rows(
            [(len(oltp_trace), MIGRATION_EVENT, 0, 1)]
        )
        with pytest.raises(TraceError, match="past the end"):
            Trace.from_columns(oltp_trace.columns, events=out_of_range)


# --------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------- #
class TestGeneration:
    def test_thread_ids_are_load_bearing(self, migrate_trace):
        _, _, trace = migrate_trace
        cols = trace.columns
        assert (cols.thread_id >= 0).all()
        # Before the first migration every thread runs on its own core.
        first = int(trace.events.record_index[0])
        prefix = slice(0, first)
        assert np.array_equal(cols.core[prefix], cols.thread_id[prefix])

    def test_migrated_thread_issues_from_new_core(self, migrate_trace):
        _, _, trace = migrate_trace
        cols = trace.columns
        migrations = [
            row for row in trace.events.rows() if row[1] == MIGRATION_EVENT
        ]
        assert migrations
        index, _, thread, to_core = migrations[0]
        after = cols.thread_id[index:] == thread
        # The thread's next records come from its new core (until it
        # migrates again, so check up to the following event involving it).
        next_move = next(
            (
                row[0]
                for row in migrations[1:]
                if row[2] == thread
            ),
            len(cols.core),
        )
        window = cols.core[index:next_move][after[: next_move - index]]
        assert window.size > 0 and (window == to_core).all()

    def test_phased_mix_shifts_per_phase(self):
        dyn = resolve_dynamic("mix:phased")
        config = SystemConfig.multiprogrammed_8core().scaled(TEST_SCALE)
        trace = DynamicTraceGenerator(dyn, config, seed=5, scale=TEST_SCALE).generate(
            RECORDS
        )
        starts = trace.metadata["phase_starts"] + [len(trace)]
        shares = []
        for begin, end in zip(starts[:-1], starts[1:], strict=True):
            labels = trace.columns.true_class[begin:end]
            # code 3 == shared_rw (class table is None-first).
            shares.append(float((labels == 3).mean()))
        base, private_heavy, shared_heavy = shares
        assert private_heavy < base < shared_heavy

    def test_onset_redirects_shared_traffic(self):
        dyn = resolve_dynamic("oltp-db2:onset")
        config = server_config()
        trace = DynamicTraceGenerator(dyn, config, seed=5, scale=TEST_SCALE).generate(
            RECORDS
        )
        onset_pages = set(trace.metadata["onset_pages"])
        assert onset_pages
        shift = config.page_size.bit_length() - 1
        pages = trace.columns.address >> shift
        (onset_index,) = [
            row[0] for row in trace.events.rows() if row[1] == SHARING_ONSET_EVENT
        ]
        touched_before = {int(p) for p in pages[:onset_index]} & onset_pages
        cores_after = trace.columns.core[onset_index:]
        on_onset_pages = np.isin(pages[onset_index:], sorted(onset_pages))
        # After the onset the region is touched from many cores; before it,
        # only the victim's accesses could reach it.
        assert len(np.unique(cores_after[on_onset_pages])) > 1
        assert touched_before <= onset_pages

    def test_onset_region_loses_its_private_ground_truth(self):
        """Post-onset, no record keeps a stale private label on the now
        genuinely shared region (misclassification accounting stays honest)."""
        dyn = resolve_dynamic("oltp-db2:onset")
        config = server_config()
        trace = DynamicTraceGenerator(dyn, config, seed=5, scale=TEST_SCALE).generate(
            RECORDS
        )
        (onset_index,) = [
            row[0] for row in trace.events.rows() if row[1] == SHARING_ONSET_EVENT
        ]
        shift = config.page_size.bit_length() - 1
        pages = trace.columns.address >> shift
        on_onset = np.isin(pages[onset_index:], trace.metadata["onset_pages"])
        labels_after = trace.columns.true_class[onset_index:]
        # Class table is None-first: code 2 == "private".
        assert not (on_onset & (labels_after == 2)).any()

    def test_schedule_exceeding_machine_rejected(self):
        base = get_workload("mix")  # 8-core machine
        dyn = DynamicWorkloadSpec(
            name="mix:bad",
            base=base,
            schedule=MigrationSchedule(
                migrations=(MigrationEvent(at=0.5, thread_id=30, to_core=1),)
            ),
        )
        with pytest.raises(TraceError):
            DynamicTraceGenerator(
                dyn,
                SystemConfig.multiprogrammed_8core().scaled(TEST_SCALE),
                scale=TEST_SCALE,
            )

    def test_generation_is_deterministic(self, migrate_trace):
        dyn, config, trace = migrate_trace
        again = DynamicTraceGenerator(
            dyn, config, seed=3, scale=TEST_SCALE
        ).generate(RECORDS)
        assert np.array_equal(again.columns.address, trace.columns.address)
        assert np.array_equal(again.columns.core, trace.columns.core)
        assert again.events.rows() == trace.events.rows()


# --------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------- #
class TestDynamicReplay:
    def test_migrating_scenario_reports_os_activity(self, migrate_trace):
        dyn, config, trace = migrate_trace
        chip = TiledChip(config)
        design = build_design("R", chip)
        result = TraceSimulator(design, CpiModel.for_workload(dyn.base)).run(trace)
        stats = result.stats
        assert stats.thread_migrations == len(dyn.schedule.migrations)
        assert stats.sharing_onsets == len(dyn.schedule.sharing_onsets)
        assert stats.migration_reowns > 0
        assert stats.reclassifications > 0
        assert result.metadata["dynamic"] is True
        # The OS charges the events into the reclassification component.
        assert stats.component_cpi("reclassification") > 0

    def test_phased_scenario_reports_per_phase_cpi(self):
        result = simulate_workload(
            "mix:phased", "R", num_records=RECORDS, scale=TEST_SCALE, seed=5
        )
        breakdown = result.stats.phase_breakdown()
        assert [row["phase"] for row in breakdown] == [
            "base",
            "private-heavy",
            "shared-heavy",
        ]
        for row in breakdown:
            assert row["cpi"] > 0 and row["accesses"] > 0
        # Phase totals cover exactly the measured window.
        measured = RECORDS - result.metadata["warmup_records"]
        assert sum(row["accesses"] for row in breakdown) == measured
        total_cycles = sum(
            totals["cycles"] for totals in result.stats.phases.values()
        )
        assert total_cycles == pytest.approx(result.stats.total_cycles)

    def test_non_rnuca_designs_replay_dynamic_traces(self, migrate_trace):
        dyn, config, trace = migrate_trace
        for letter in ("P", "S", "I"):
            chip = TiledChip(config)
            design = build_design(letter, chip)
            result = TraceSimulator(design, CpiModel.for_workload(dyn.base)).run(trace)
            assert result.cpi > 0
            assert result.stats.thread_migrations == len(dyn.schedule.migrations)
            # No OS model: nothing to re-own or reclassify.
            assert result.stats.migration_reowns == 0

    def test_reference_engine_replays_dynamic_traces(self, migrate_trace):
        """The reference oracle consumes event-carrying traces end-to-end
        and agrees with the fast engine bit-for-bit (the loud rejection it
        used to raise is gone)."""
        dyn, config, trace = migrate_trace
        results = {}
        for engine in ("fast", "reference"):
            chip = TiledChip(config)
            design = build_design("R", chip)
            simulator = TraceSimulator(
                design, CpiModel.for_workload(dyn.base), engine=engine
            )
            results[engine] = simulator.run(trace)
        assert results["reference"].stats.thread_migrations == len(
            dyn.schedule.migrations
        )
        assert (
            results["reference"].stats.to_dict() == results["fast"].stats.to_dict()
        )

    def test_migration_window_wires_through_rnuca_config(self):
        """The window knob reaches the live scheduler (not just unit tests)."""
        from repro.core.rnuca import RNucaConfig

        chip = TiledChip(server_config())
        design = build_design(
            "R", chip, rnuca_config=RNucaConfig(migration_window=3)
        )
        assert design.policy.classifier.scheduler.migration_window == 3
        default = build_design("R", TiledChip(server_config()))
        assert default.policy.classifier.scheduler.migration_window is None

    def test_simulate_workload_accepts_scenario_names(self):
        result = simulate_workload(
            "oltp-db2:migrate", "R", num_records=4000, scale=TEST_SCALE, seed=1
        )
        assert result.workload == "oltp-db2:migrate"
        assert result.stats.thread_migrations > 0


# --------------------------------------------------------------------- #
# Stats plumbing
# --------------------------------------------------------------------- #
class TestDynamicStats:
    def test_roundtrip_preserves_dynamic_fields(self):
        stats = SimulationStats(
            instructions=10,
            accesses=4,
            thread_migrations=2,
            sharing_onsets=1,
            migration_reowns=3,
            reclassifications=5,
            phases={"a": {"instructions": 10, "cycles": 20.0, "accesses": 4}},
        )
        clone = SimulationStats.from_dict(stats.to_dict())
        assert clone.to_dict() == stats.to_dict()
        assert clone.phase_cpi("a") == pytest.approx(2.0)

    def test_from_dict_defaults_for_old_payloads(self):
        stats = SimulationStats(instructions=1, accesses=1)
        payload = stats.to_dict()
        for key in (
            "thread_migrations",
            "sharing_onsets",
            "migration_reowns",
            "reclassifications",
            "phases",
        ):
            payload.pop(key)
        old = SimulationStats.from_dict(payload)
        assert old.thread_migrations == 0 and old.phases == {}

    def test_merge_sums_dynamic_fields(self):
        left = SimulationStats(
            migration_reowns=1,
            phases={"a": {"instructions": 5, "cycles": 10.0, "accesses": 2}},
        )
        right = SimulationStats(
            migration_reowns=2,
            phases={
                "a": {"instructions": 5, "cycles": 6.0, "accesses": 2},
                "b": {"instructions": 1, "cycles": 1.0, "accesses": 1},
            },
        )
        left.merge(right)
        assert left.migration_reowns == 3
        assert left.phases["a"]["cycles"] == pytest.approx(16.0)
        assert left.phases["b"]["accesses"] == 1


# --------------------------------------------------------------------- #
# Scenario catalogue
# --------------------------------------------------------------------- #
class TestScenarios:
    def test_names_compose_workloads_and_variants(self):
        names = dynamic_workload_names(("oltp-db2",))
        assert names == [
            "oltp-db2:adaptive",
            "oltp-db2:migrate",
            "oltp-db2:onset",
            "oltp-db2:phased",
        ]
        assert all(is_dynamic_workload(name) for name in names)
        assert not is_dynamic_workload("oltp-db2")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dynamic variant"):
            resolve_dynamic("oltp-db2:teleport")

    def test_unknown_base_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            resolve_dynamic("nope:migrate")

    def test_every_variant_resolves_for_every_category(self):
        for name in ("oltp-db2", "em3d", "mix"):
            for scenario in dynamic_workload_names((name,)):
                dyn = resolve_dynamic(scenario)
                assert dyn.name == scenario
                assert dyn.base.name == name
