"""Tests for the serve daemon, its protocol, and the load generator.

The correctness contract under test: N concurrent clients hammering the
daemon with overlapping point sets must produce results bit-identical to
a sequential ``run_grid`` over the union, with **exactly one simulation
per unique point** (in-flight dedupe + result-store hits) and exactly one
trace generation per unique workload signature (the PR-4 exactly-once
pattern, extended to the serve path).
"""

import json
import threading
import time

import pytest

import repro.sim.runner as runner_module
from repro.faults import FaultPlan
from repro.serve import (
    DaemonOverloaded,
    ServeClient,
    ServeWorkload,
    SimulationDaemon,
    run_chaos_bench,
    run_serve_bench,
)
from repro.serve.loadgen import NO_FAULTS, run_loadgen
from repro.sim.runner import (
    BatchRunner,
    ExperimentGrid,
    ExperimentPoint,
    ResultStore,
    run_grid,
)
from repro.workloads.store import TraceStore

from .conftest import TEST_SCALE

RECORDS = 600


def canonical(payload) -> str:
    """JSON-canonical form: tuples become lists, key order fixed."""
    return json.dumps(payload, sort_keys=True)


def make_point(workload="mix", design="P", seed=3):
    return ExperimentPoint.make(
        workload, design, num_records=RECORDS, scale=TEST_SCALE, seed=seed
    )


@pytest.fixture
def stores(tmp_path):
    return (
        ResultStore(tmp_path / "results"),
        TraceStore(tmp_path / "traces"),
    )


@pytest.fixture
def daemon(stores):
    store, trace_store = stores
    runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
    with SimulationDaemon(runner, port=0) as daemon:
        yield daemon


class TestProtocolOps:
    def test_ping(self, daemon):
        with ServeClient(daemon.host, daemon.port) as client:
            assert client.ping()

    def test_stats_counts_requests(self, daemon):
        with ServeClient(daemon.host, daemon.port) as client:
            client.ping()
            stats = client.stats()
        assert stats["requests"] >= 2
        assert stats["errors"] == 0
        assert stats["uptime_s"] >= 0

    def test_unknown_op_and_garbage_keep_connection_usable(self, daemon):
        with ServeClient(daemon.host, daemon.port) as client:
            client._send({"op": "no-such-op"})
            assert client._read_event()["event"] == "error"
            client._sock.sendall(b"this is not json\n")
            assert client._read_event()["event"] == "error"
            assert client.ping()  # the connection survived both

    def test_bad_point_is_an_error_event(self, daemon):
        with ServeClient(daemon.host, daemon.port) as client:
            client._send({"op": "run", "point": {"workload": "mix"}})
            event = client._read_event()
            assert event["event"] == "error"
            assert client.ping()

    def test_shutdown_stops_the_daemon(self, stores):
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        daemon = SimulationDaemon(runner, port=0).start()
        with ServeClient(daemon.host, daemon.port) as client:
            assert client.shutdown()
        daemon._thread.join(timeout=10.0)
        assert not daemon._thread.is_alive()


class TestRunRequests:
    def test_run_matches_direct_execution(self, daemon, stores):
        point = make_point()
        with ServeClient(daemon.host, daemon.port) as client:
            final = client.run(point.to_dict())
        assert final["status"] == "executed"
        assert final["hash"] == point.content_hash
        expected = runner_module.execute_point(point)
        assert canonical(final["result"]) == canonical(expected.to_dict())

    def test_engine_knob_round_trips_through_serve(self, stores, monkeypatch):
        """RNUCA_ENGINE set on the daemon's side of the wire is honoured.

        A serve request executed through the batch kernel returns the
        same serialized result as a direct fast-engine execution — the
        engine is a replay implementation detail, never a protocol or
        payload difference.
        """
        store, trace_store = stores
        point = make_point(design="R")
        expected = runner_module.execute_point(point)  # library default: fast
        monkeypatch.setenv("RNUCA_ENGINE", "batch")
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        with SimulationDaemon(runner, port=0) as daemon:
            with ServeClient(daemon.host, daemon.port) as client:
                final = client.run(point.to_dict())
        assert final["status"] == "executed"
        assert canonical(final["result"]) == canonical(expected.to_dict())

    def test_second_request_is_cached(self, daemon):
        point = make_point()
        with ServeClient(daemon.host, daemon.port) as client:
            assert client.run(point.to_dict())["status"] == "executed"
            again = client.run(point.to_dict())
        assert again["status"] == "cached"
        assert daemon.stats.snapshot()["cached"] == 1

    def test_accepted_event_streams_before_result(self, daemon):
        point = make_point(design="R")
        with ServeClient(daemon.host, daemon.port) as client:
            events = list(client.run_events(point.to_dict()))
        assert [event["event"] for event in events] == ["accepted", "result"]
        assert events[0]["status"] == "executing"


class TestConcurrentClients:
    def test_overlapping_clients_match_sequential_grid_exactly_once(
        self, daemon, stores, tmp_path, monkeypatch
    ):
        """4 clients, overlapping subsets -> bit-identical to run_grid(union),
        one simulation per unique point, one generation per unique trace."""
        union = ExperimentGrid(
            workloads=("mix", "oltp-db2"),
            designs=("P", "R"),
            num_records=RECORDS,
            scale=TEST_SCALE,
            seed=3,
        ).points()
        # Overlapping subsets: every client shares points with its neighbours.
        subsets = [union[0:3], union[1:4], [union[0], union[2], union[3]], union]

        executions = []
        lock = threading.Lock()
        real_execute = runner_module.execute_point

        def counting_execute(point):
            with lock:
                executions.append(point.content_hash)
            return real_execute(point)

        monkeypatch.setattr(runner_module, "execute_point", counting_execute)

        responses: dict[int, list] = {}
        errors: list = []

        def client_thread(client_id, points):
            try:
                with ServeClient(daemon.host, daemon.port) as client:
                    responses[client_id] = [client.run(p.to_dict()) for p in points]
            except Exception as error:  # surfaced in the main thread's assert
                errors.append(error)

        threads = [
            threading.Thread(target=client_thread, args=(i, subset))
            for i, subset in enumerate(subsets)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

        # Exactly one simulation per unique point, daemon stats agree.
        assert sorted(executions) == sorted(p.content_hash for p in union)
        stats = daemon.stats.snapshot()
        assert stats["executed"] == len(union)
        assert stats["errors"] == 0
        total_requests = sum(len(s) for s in subsets)
        assert stats["cached"] + stats["deduped"] == total_requests - len(union)

        # Exactly one trace generation per unique workload signature.
        _, trace_store = stores
        log = trace_store.generation_log()
        assert len(log) == len({p.workload for p in union})

        # Bit-identical to a sequential grid over the union (fresh stores).
        monkeypatch.setattr(runner_module, "execute_point", real_execute)
        sequential = run_grid(
            ExperimentGrid(
                workloads=("mix", "oltp-db2"),
                designs=("P", "R"),
                num_records=RECORDS,
                scale=TEST_SCALE,
                seed=3,
            ),
            store=ResultStore(tmp_path / "seq-results"),
            jobs=1,
            trace_store=TraceStore(tmp_path / "seq-traces"),
        )
        expected = {
            point.content_hash: canonical(result.to_dict())
            for point, result in sequential.items()
        }
        for client_id, finals in responses.items():
            for final in finals:
                assert canonical(final["result"]) == expected[final["hash"]], (
                    f"client {client_id} diverged on {final['point']}"
                )

    def test_identical_inflight_requests_share_one_simulation(
        self, stores, monkeypatch
    ):
        """run_point-level dedupe: N threads, one slow point, one execution."""
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        point = make_point(design="R")
        calls = []
        lock = threading.Lock()
        real_execute = runner_module.execute_point

        def slow_execute(p):
            with lock:
                calls.append(p.content_hash)
            time.sleep(0.15)  # hold the in-flight slot so joiners pile up
            return real_execute(p)

        monkeypatch.setattr(runner_module, "execute_point", slow_execute)
        barrier = threading.Barrier(4)
        outcomes = []

        def worker():
            barrier.wait()
            result, status = runner.run_point(point)
            with lock:
                outcomes.append((status, result.cpi))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert len(calls) == 1
        statuses = sorted(status for status, _ in outcomes)
        assert statuses == ["deduped", "deduped", "deduped", "executed"]
        assert len({cpi for _, cpi in outcomes}) == 1  # all shared one result

    def test_failed_execution_propagates_to_joiners_and_clears(
        self, stores, monkeypatch
    ):
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        point = make_point(design="P", seed=11)

        def boom(p):
            time.sleep(0.05)
            raise RuntimeError("injected failure")

        monkeypatch.setattr(runner_module, "execute_point", boom)
        barrier = threading.Barrier(2)
        failures = []

        def worker():
            barrier.wait()
            try:
                runner.run_point(point)
            except RuntimeError as error:
                failures.append(str(error))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert failures == ["injected failure", "injected failure"]
        assert not runner._inflight  # the failed slot was cleared

        # The point is retryable afterwards.
        monkeypatch.undo()
        result, status = runner.run_point(point)
        assert status == "executed"
        assert result.cpi > 0


class TestRobustness:
    def test_health_op_reports_recovery_counters(self, daemon):
        with ServeClient(daemon.host, daemon.port) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["in_flight"] == 0
        assert health["admission_limit"] >= 1
        for key in (
            "pool_generation",
            "pool_rebuilds",
            "retries",
            "shed",
            "idle_timeouts",
            "quarantined_results",
            "quarantined_traces",
            "injected_faults",
        ):
            assert key in health

    def test_idle_connection_is_closed_with_an_error_event(self, stores):
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        with SimulationDaemon(runner, port=0, idle_timeout_s=0.3) as daemon:
            with ServeClient(daemon.host, daemon.port) as client:
                assert client.ping()
                # Stall past the idle budget without sending anything.
                event = client._read_event()
                assert event["event"] == "error"
                assert "idle" in event["error"]
                assert "RNUCA_SERVE_IDLE_S" in event["error"]
            assert daemon.stats.snapshot()["idle_timeouts"] == 1

    def test_admission_bound_sheds_then_client_retry_succeeds(
        self, stores, monkeypatch
    ):
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        real_execute = runner_module.execute_point

        def slow_execute(p):
            time.sleep(0.4)
            return real_execute(p)

        monkeypatch.setattr(runner_module, "execute_point", slow_execute)
        with SimulationDaemon(runner, port=0, max_inflight=1) as daemon:
            point = make_point(design="R", seed=21)
            holder_done = threading.Event()

            def holder():
                with ServeClient(daemon.host, daemon.port) as client:
                    client.run(point.to_dict())
                holder_done.set()

            thread = threading.Thread(target=holder)
            thread.start()
            time.sleep(0.1)  # let the holder claim the only admission slot
            with ServeClient(daemon.host, daemon.port, retries=20) as client:
                final = client.run(point.to_dict())
                retries = client.transient_retries
            thread.join(timeout=30)
            stats = daemon.stats.snapshot()
        assert holder_done.is_set()
        assert final["status"] in ("cached", "deduped", "executed")
        assert stats["shed"] >= 1  # the bound actually shed us
        assert retries >= 1  # and the client retried through it

    def test_shed_request_without_retries_raises_overloaded(
        self, stores, monkeypatch
    ):
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        real_execute = runner_module.execute_point

        def slow_execute(p):
            time.sleep(0.4)
            return real_execute(p)

        monkeypatch.setattr(runner_module, "execute_point", slow_execute)
        with SimulationDaemon(runner, port=0, max_inflight=1) as daemon:
            point = make_point(design="R", seed=22)
            thread = threading.Thread(
                target=lambda: ServeClient(daemon.host, daemon.port)
                .run(point.to_dict())
            )
            thread.start()
            time.sleep(0.1)
            with ServeClient(daemon.host, daemon.port, retries=0) as client:
                with pytest.raises(DaemonOverloaded, match="admission capacity"):
                    client.run(point.to_dict())
            thread.join(timeout=30)

    def test_injected_disconnect_is_absorbed_by_client_retry(self, stores):
        """The worst transient: work done, reply lost.  The retry must hit
        the store and return the identical result with zero visible errors."""
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        plan = FaultPlan.parse("client-disconnect:p=1.0,max=1")
        with SimulationDaemon(runner, port=0, faults=plan) as daemon:
            point = make_point(design="P", seed=23)
            with ServeClient(daemon.host, daemon.port, retries=2) as client:
                final = client.run(point.to_dict())
                retries = client.transient_retries
            stats = daemon.stats.snapshot()
        assert final["status"] == "cached"  # the first attempt stored it
        assert retries == 1
        assert stats["injected_disconnects"] == 1
        assert stats["errors"] == 0

    def test_stop_reports_a_wedged_serve_thread(self, stores, capsys):
        store, trace_store = stores
        runner = BatchRunner(store=store, jobs=1, trace_store=trace_store)
        daemon = SimulationDaemon(runner, port=0).start()
        real_thread = daemon._thread
        wedged = threading.Thread(target=time.sleep, args=(5,), daemon=True)
        wedged.start()
        daemon._thread = wedged
        assert daemon.stop(timeout=0.2) is False
        assert "failed to stop" in capsys.readouterr().err
        daemon._thread = real_thread
        assert daemon.stop() is True


class TestChaosBench:
    def test_chaos_bench_zero_failures_and_bit_identical(self):
        payload = run_chaos_bench(
            workloads=("mix",),
            designs=("P", "R"),
            clients=2,
            num_requests=8,
            num_records=RECORDS,
            scale=TEST_SCALE,
            jobs=2,
            faults="client-disconnect:p=1.0,max=1;store-io:p=0.3",
            fault_seed=0,
            client_retries=5,
        )
        assert payload["benchmark"] == "serve-chaos"
        assert payload["failed_requests"] == 0
        assert payload["availability"] == 1.0
        assert payload["identical_to_fault_free"] is True
        assert payload["mismatched_points"] == []
        assert payload["errors"] == 0, payload["error_messages"]
        # The faults demonstrably happened — this was not a quiet run.
        assert payload["injected_faults"]["client-disconnect"] >= 1
        assert payload["client_retries"] >= 1

    def test_chaos_bench_rejects_an_empty_plan(self):
        with pytest.raises(ValueError):
            run_chaos_bench(faults="  ")


class TestLoadgen:
    def test_serve_bench_payload(self):
        payload = run_serve_bench(
            workloads=("mix",),
            designs=("P", "R"),
            clients=4,
            num_requests=16,
            num_records=RECORDS,
            scale=TEST_SCALE,
        )
        assert payload["benchmark"] == "serve-loadgen"
        assert payload["errors"] == 0, payload["error_messages"]
        assert payload["requests"] == 16
        assert payload["clients"] == 4
        assert payload["unique_points"] == 2
        assert payload["requests_per_sec"] > 0
        for phase in ("latency", "cold", "warm"):
            assert set(payload[phase]) >= {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}
        stats = payload["daemon_stats"]
        assert stats["executed"] == 2  # exactly once per unique point
        assert stats["deduped"] + stats["cached"] == 14
        assert stats["deduped"] > 0  # identical sequences overlap in flight
        # Robustness evidence rides along on every loadgen payload.
        assert len(payload["result_digests"]) == 2
        assert payload["client_retries"] == 0
        assert payload["daemon_health"]["pool_rebuilds"] == 0

    def test_serve_bench_with_pinned_empty_plan_ignores_ambient_faults(
        self, monkeypatch
    ):
        monkeypatch.setenv("RNUCA_FAULTS", "client-disconnect:p=1.0")
        payload = run_serve_bench(
            workloads=("mix",),
            designs=("P",),
            clients=2,
            num_requests=4,
            num_records=RECORDS,
            scale=TEST_SCALE,
            faults=NO_FAULTS,
        )
        assert payload["errors"] == 0
        assert payload["client_retries"] == 0
        assert payload["daemon_health"]["injected_faults"] == {
            site: 0 for site in payload["daemon_health"]["injected_faults"]
        }

    def test_engine_knob_round_trips_through_loadgen(self, monkeypatch):
        """The closed loop under RNUCA_ENGINE=batch digests identically.

        ``run_serve_bench`` spins up its own daemon, so the knob crosses
        the full stack: loadgen client -> wire -> daemon -> runner ->
        batch kernel.  The per-point result digests must match a
        default-engine run exactly.
        """
        kwargs = dict(
            workloads=("mix",),
            designs=("P",),
            clients=2,
            num_requests=4,
            num_records=RECORDS,
            scale=TEST_SCALE,
        )
        fast = run_serve_bench(**kwargs)
        monkeypatch.setenv("RNUCA_ENGINE", "batch")
        batch = run_serve_bench(**kwargs)
        assert batch["errors"] == 0, batch["error_messages"]
        assert batch["result_digests"] == fast["result_digests"]

    def test_workload_sequence_is_deterministic_and_covers_pool(self):
        workload = ServeWorkload.mixed(
            ("mix", "oltp-db2"), ("P", "R"),
            num_records=RECORDS, scale=TEST_SCALE, seed=7,
        )
        first = workload.sequence(10)
        second = workload.sequence(10)
        assert first == second
        assert set(first[:4]) == set(workload.points)  # full pool before repeats

    def test_loadgen_against_running_daemon(self, daemon):
        workload = ServeWorkload.mixed(
            ("mix",), ("P",), num_records=RECORDS, scale=TEST_SCALE
        )
        payload = run_loadgen(
            workload, host=daemon.host, port=daemon.port, clients=2, num_requests=4
        )
        assert payload["errors"] == 0
        assert payload["requests"] == 4
        assert payload["status_counts"].get("executed") == 1

    def test_loadgen_rejects_bad_shapes(self):
        workload = ServeWorkload.mixed(("mix",), ("P",), num_records=RECORDS)
        with pytest.raises(ValueError):
            run_loadgen(workload, host="127.0.0.1", port=1, clients=0, num_requests=4)
        with pytest.raises(ValueError):
            run_loadgen(workload, host="127.0.0.1", port=1, clients=8, num_requests=4)
        with pytest.raises(ValueError):
            ServeWorkload().sequence(4)
