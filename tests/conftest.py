"""Shared fixtures for the test suite.

Tests run on heavily scaled configurations and short traces so the whole
suite stays fast; the benchmarks exercise the realistic configurations.
"""

from __future__ import annotations

import pytest

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import get_workload

#: Scale factor used throughout the tests (64x smaller than the paper).
TEST_SCALE = 64


@pytest.fixture(autouse=True)
def trace_dir(tmp_path, monkeypatch):
    """Isolate every test from the developer's real trace cache.

    ``BatchRunner`` (and the CLI) pick up ``RNUCA_TRACE_DIR`` from the
    environment; without this fixture a developer with the variable
    exported would have the suite read from — and write into — their
    actual trace store, and a cache generated under older code could fail
    equivalence tests spuriously.
    """
    directory = tmp_path / "traces"
    monkeypatch.setenv("RNUCA_TRACE_DIR", str(directory))
    return directory


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    """Keep a developer's exported ``RNUCA_FAULTS`` out of the suite.

    Stores, runners and daemons constructed without an explicit plan fall
    back to the environment; a shell with chaos switched on would
    otherwise inject faults into every unrelated test.
    """
    monkeypatch.delenv("RNUCA_FAULTS", raising=False)
    monkeypatch.delenv("RNUCA_FAULT_SEED", raising=False)


@pytest.fixture
def config16():
    """The 16-core server configuration, scaled for fast tests."""
    return SystemConfig.server_16core().scaled(TEST_SCALE)


@pytest.fixture
def config8():
    """The 8-core multi-programmed configuration, scaled for fast tests."""
    return SystemConfig.multiprogrammed_8core().scaled(TEST_SCALE)


@pytest.fixture
def chip16(config16):
    return TiledChip(config16)


@pytest.fixture
def chip8(config8):
    return TiledChip(config8)


@pytest.fixture
def oltp_trace(config16):
    """A small OLTP trace on the scaled 16-core machine."""
    generator = SyntheticTraceGenerator(
        get_workload("oltp-db2"), config16, seed=7, scale=TEST_SCALE
    )
    return generator.generate(4000)


@pytest.fixture
def mix_trace(config8):
    """A small multi-programmed trace on the scaled 8-core machine."""
    generator = SyntheticTraceGenerator(
        get_workload("mix"), config8, seed=7, scale=TEST_SCALE
    )
    return generator.generate(3000)
