"""Tests for rotational interleaving (paper Section 4.1).

These tests check the paper's central mechanism: overlapping fixed-center
clusters replicate data without increasing per-slice capacity pressure, and
every lookup needs exactly one probe.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rotational import (
    RotationalInterleaver,
    owner_interleave_bits,
    rid_assignment,
    rotational_index,
)
from repro.errors import ClusterError
from repro.interconnect.topology import FoldedTorus2D

CLUSTER_SIZES = (2, 4, 8, 16)


def torus16() -> FoldedTorus2D:
    return FoldedTorus2D(4, 4)


class TestRidAssignment:
    def test_every_rid_value_appears_equally_often(self):
        rids = rid_assignment(4, 4, 4)
        assert sorted(rids) == sorted(list(range(4)) * 4)

    def test_rows_have_consecutive_rids(self):
        rids = rid_assignment(4, 4, 4)
        for row in range(4):
            for col in range(3):
                left, right = rids[row * 4 + col], rids[row * 4 + col + 1]
                assert (left - right) % 4 == 1

    def test_columns_differ_by_log2_n(self):
        rids = rid_assignment(4, 4, 4)
        for row in range(3):
            for col in range(4):
                upper, lower = rids[row * 4 + col], rids[(row + 1) * 4 + col]
                assert (upper - lower) % 4 == 2

    def test_base_rid_offsets_everything(self):
        base0 = rid_assignment(4, 4, 4, base_rid=0)
        base2 = rid_assignment(4, 4, 4, base_rid=2)
        assert all((b - a) % 4 == 2 for a, b in zip(base0, base2, strict=True))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ClusterError):
            rid_assignment(4, 4, 3)

    def test_rejects_bad_base_rid(self):
        with pytest.raises(ClusterError):
            rid_assignment(4, 4, 4, base_rid=4)


class TestIndexingFunction:
    def test_matches_paper_formula(self):
        """R = (Addr bits + RID + 1) mod n."""
        assert rotational_index(0, 0, 4) == 1
        assert rotational_index(3, 0, 4) == 0
        assert rotational_index(1, 2, 4) == 0
        assert rotational_index(2, 3, 4) == 2

    def test_rejects_out_of_range_inputs(self):
        with pytest.raises(ClusterError):
            rotational_index(4, 0, 4)
        with pytest.raises(ClusterError):
            rotational_index(0, 4, 4)

    def test_owner_bits_inverse_relationship(self):
        for n in CLUSTER_SIZES:
            for rid in range(n):
                bits = owner_interleave_bits(rid, n)
                # The owner's own lookup of those bits must map to itself (R == 0).
                assert rotational_index(bits, rid, n) == 0


class TestRotationalInterleaver:
    @pytest.mark.parametrize("size", CLUSTER_SIZES)
    def test_cluster_covers_all_rids(self, size):
        interleaver = RotationalInterleaver(torus16(), size)
        for center in range(16):
            members = interleaver.cluster_members(center)
            assert len(members) == size
            assert sorted(interleaver.rids[m] for m in members) == list(range(size))

    def test_cluster_center_is_member_zero(self):
        interleaver = RotationalInterleaver(torus16(), 4)
        for center in range(16):
            assert interleaver.cluster_members(center)[0] == center

    def test_size4_cluster_is_nearest_neighbors(self):
        """On the 4x4 torus, size-4 clusters are the center plus 3 adjacent tiles."""
        interleaver = RotationalInterleaver(torus16(), 4)
        torus = torus16()
        for center in range(16):
            assert interleaver.max_lookup_distance(center) == 1
            for member in interleaver.cluster_members(center):
                assert torus.hop_distance(center, member) <= 1

    def test_single_probe_lookup(self):
        """Every (center, address-bits) pair resolves to exactly one slice."""
        interleaver = RotationalInterleaver(torus16(), 4)
        for center in range(16):
            targets = {interleaver.target_slice(center, bits) for bits in range(4)}
            assert len(targets) == 4

    @pytest.mark.parametrize("size", CLUSTER_SIZES)
    def test_each_slice_stores_the_same_data_for_every_cluster(self, size):
        """The key invariant of Section 4.1.

        A tile stores exactly the same 1/n-th of the data (the same
        interleaving-bit value) regardless of which cluster's lookup reaches
        it, so overlapping clusters do not increase capacity pressure.
        """
        interleaver = RotationalInterleaver(torus16(), size)
        stored: dict[int, set[int]] = {tile: set() for tile in range(16)}
        for center in range(16):
            for bits in range(size):
                target = interleaver.target_slice(center, bits)
                stored[target].add(bits)
        for tile, bit_values in stored.items():
            if bit_values:
                assert bit_values == {interleaver.stored_bits(tile)}

    def test_whole_chip_cluster_is_unique_placement(self):
        interleaver = RotationalInterleaver(torus16(), 16)
        for bits in range(16):
            targets = {interleaver.target_slice(c, bits) for c in range(16)}
            assert len(targets) == 1

    def test_8core_torus_supported(self):
        interleaver = RotationalInterleaver(FoldedTorus2D(4, 2), 4)
        for center in range(8):
            members = interleaver.cluster_members(center)
            assert sorted(interleaver.rids[m] for m in members) == [0, 1, 2, 3]

    def test_average_lookup_distance_grows_with_cluster_size(self):
        distances = []
        for size in (1, 4, 16):
            if size == 1:
                distances.append(0.0)
                continue
            interleaver = RotationalInterleaver(torus16(), size)
            distances.append(
                sum(interleaver.average_lookup_distance(c) for c in range(16)) / 16
            )
        assert distances[0] < distances[1] < distances[2]

    def test_cluster_too_large_rejected(self):
        with pytest.raises(ClusterError):
            RotationalInterleaver(torus16(), 32)

    def test_wrong_rid_count_rejected(self):
        with pytest.raises(ClusterError):
            RotationalInterleaver(torus16(), 4, rids=[0, 1, 2, 3])

    @given(
        base_rid=st.integers(min_value=0, max_value=3),
        center=st.integers(min_value=0, max_value=15),
        bits=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_consistency_property(self, base_rid, center, bits):
        """Whoever a lookup lands on stores exactly those interleaving bits."""
        interleaver = RotationalInterleaver(torus16(), 4, base_rid=base_rid)
        target = interleaver.target_slice(center, bits)
        assert interleaver.stored_bits(target) == bits


class TestMaxLookupDistanceCache:
    def test_cache_is_per_instance(self):
        """Regression: the distance cache must live on the instance.

        The old ``lru_cache`` on the method keyed on ``self`` (so results
        were always correct) but kept a strong reference to every
        interleaver ever created, leaking them across batch runs.  The
        cache now lives on the instance, like ``_members_cache``.
        """
        a = RotationalInterleaver(torus16(), 4)
        b = RotationalInterleaver(torus16(), 16)
        assert a.max_lookup_distance(0) == 1
        assert b.max_lookup_distance(0) > 1
        assert a._max_distance_cache is not b._max_distance_cache
        assert 0 in a._max_distance_cache and 0 in b._max_distance_cache

    def test_instances_are_garbage_collected(self):
        """The method must hold no global strong reference to instances."""
        import gc
        import weakref

        interleaver = RotationalInterleaver(torus16(), 4)
        interleaver.max_lookup_distance(0)
        ref = weakref.ref(interleaver)
        del interleaver
        gc.collect()
        assert ref() is None

    def test_cached_value_matches_recomputation(self):
        interleaver = RotationalInterleaver(torus16(), 4)
        for center in range(16):
            first = interleaver.max_lookup_distance(center)
            assert interleaver.max_lookup_distance(center) == first
            assert first == max(
                interleaver.topology.hop_distance(center, member)
                for member in interleaver.cluster_members(center)
            )
