"""The runtime lock-order and unguarded-write detector (repro.check.locks).

Every test that *provokes* a violation builds a private
:class:`LockTracker` and hands it to its :class:`TrackedLock` instances,
so the deliberate inversions never reach the process-global tracker the
``RNUCA_CHECK_LOCKS=1`` pytest plugin asserts on.
"""

from __future__ import annotations

import threading

from repro.check.locks import (
    LockTracker,
    TrackedLock,
    find_inversions,
    lock_report,
    make_lock,
    tracking_enabled,
    unguarded_writes,
)


def _tracked_pair(tracker: LockTracker) -> tuple[TrackedLock, TrackedLock]:
    return TrackedLock("A", tracker=tracker), TrackedLock("B", tracker=tracker)


def _run_threads(*targets) -> None:
    threads = [threading.Thread(target=target) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


# ---------------------------------------------------------------------- #
# Lock-order inversions
# ---------------------------------------------------------------------- #
def test_opposite_nesting_orders_are_an_inversion():
    """Thread 1 nests A->B, thread 2 nests B->A: a potential deadlock."""
    tracker = LockTracker()
    tracker.enabled = True
    lock_a, lock_b = _tracked_pair(tracker)

    def a_then_b() -> None:
        with lock_a, lock_b:
            pass

    def b_then_a() -> None:
        with lock_b, lock_a:
            pass

    # Sequential execution still records both orders: the check is over
    # the union of observed acquisition orders, not a lucky interleaving.
    _run_threads(a_then_b)
    _run_threads(b_then_a)

    violations = tracker.find_inversions()
    assert len(violations) == 1
    violation = violations[0]
    assert violation.cycle == ("A", "B")
    assert len(violation.witnesses) == 2
    assert "lock-order inversion" in violation.format()
    assert "A" in violation.format() and "B" in violation.format()


def test_consistent_nesting_is_clean():
    """Always A->B, across many threads: edges exist but no cycle."""
    tracker = LockTracker()
    tracker.enabled = True
    lock_a, lock_b = _tracked_pair(tracker)

    def a_then_b() -> None:
        with lock_a, lock_b:
            pass

    _run_threads(a_then_b, a_then_b, a_then_b)
    assert ("A", "B") in tracker.edges()
    assert tracker.find_inversions() == []


def test_three_lock_cycle_is_one_violation():
    """A->B, B->C, C->A collapses to one strongly connected component."""
    tracker = LockTracker()
    tracker.enabled = True
    locks = {name: TrackedLock(name, tracker=tracker) for name in "ABC"}

    for outer, inner in (("A", "B"), ("B", "C"), ("C", "A")):
        with locks[outer], locks[inner]:
            pass

    violations = tracker.find_inversions()
    assert len(violations) == 1
    assert violations[0].cycle == ("A", "B", "C")


def test_reentrant_same_name_does_not_self_edge():
    """Two locks sharing a name (striped locks) never form a self-cycle."""
    tracker = LockTracker()
    tracker.enabled = True
    first = TrackedLock("stripe", tracker=tracker)
    second = TrackedLock("stripe", tracker=tracker)
    with first, second:
        pass
    assert tracker.find_inversions() == []


def test_disabled_tracker_records_nothing():
    tracker = LockTracker()
    lock_a, lock_b = _tracked_pair(tracker)
    with lock_a, lock_b:
        pass
    assert tracker.edges() == {}
    assert tracker.find_inversions() == []


def test_reset_clears_collected_evidence():
    tracker = LockTracker()
    tracker.enabled = True
    lock_a, lock_b = _tracked_pair(tracker)
    with lock_a, lock_b:
        pass
    tracker.on_write("orphan", None)
    assert tracker.edges() and tracker.writes()
    tracker.reset()
    assert tracker.edges() == {}
    assert tracker.writes() == []


# ---------------------------------------------------------------------- #
# Unguarded writes
# ---------------------------------------------------------------------- #
def test_write_with_no_lock_held_is_flagged():
    tracker = LockTracker()
    tracker.enabled = True
    tracker.on_write("store.results", None)
    (message,) = tracker.writes()
    assert "store.results" in message
    assert "no lock held" in message


def test_write_under_any_lock_satisfies_unregistered_state():
    tracker = LockTracker()
    tracker.enabled = True
    lock_a, _ = _tracked_pair(tracker)
    with lock_a:
        tracker.on_write("store.results", None)
    assert tracker.writes() == []


def test_write_requires_the_specific_registered_guard():
    """Holding the *wrong* lock is still an unguarded write."""
    tracker = LockTracker()
    tracker.enabled = True
    lock_a, lock_b = _tracked_pair(tracker)
    tracker.register("runner.inflight", lock_a)
    with lock_b:
        tracker.on_write("runner.inflight", None)
    (message,) = tracker.writes()
    assert "runner.inflight" in message and "'A'" in message
    tracker.reset()
    tracker.register("runner.inflight", lock_a)
    with lock_a:
        tracker.on_write("runner.inflight", None)
    assert tracker.writes() == []


def test_explicit_guard_argument_overrides_registry():
    tracker = LockTracker()
    tracker.enabled = True
    lock_a, lock_b = _tracked_pair(tracker)
    with lock_b:
        tracker.on_write("daemon.stats", lock_a)
    (message,) = tracker.writes()
    assert "daemon.stats" in message
    with lock_a:
        tracker.on_write("daemon.stats", lock_a)
    assert len(tracker.writes()) == 1  # the guarded write added nothing


# ---------------------------------------------------------------------- #
# TrackedLock behaves like threading.Lock
# ---------------------------------------------------------------------- #
def test_tracked_lock_api_matches_threading_lock():
    lock = TrackedLock("api", tracker=LockTracker())
    assert not lock.locked()
    assert lock.acquire()
    assert lock.locked()
    assert not lock.acquire(blocking=False)
    lock.release()
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert "api" in repr(lock)


def test_tracked_lock_provides_mutual_exclusion():
    lock = TrackedLock("counter", tracker=LockTracker())
    state = {"value": 0}

    def bump() -> None:
        for _ in range(500):
            with lock:
                state["value"] += 1

    _run_threads(bump, bump, bump, bump)
    assert state["value"] == 2000


# ---------------------------------------------------------------------- #
# Module-level surface (the global tracker the plugin uses)
# ---------------------------------------------------------------------- #
def test_global_surface_is_quiet_by_default():
    """make_lock locks report to the global tracker, off unless enabled."""
    from repro import knobs

    # The pytest plugin turns the global tracker on for the whole session
    # under RNUCA_CHECK_LOCKS=1; otherwise tracking must default to off.
    assert tracking_enabled() == knobs.check_locks()
    lock = make_lock("test.module-surface")
    with lock:
        pass
    assert find_inversions() == []
    assert unguarded_writes() == []
    report = lock_report()
    assert set(report) == {"edges", "inversions", "unguarded_writes"}
