"""Tests for the simulation engine, CPI model, statistics and sampling."""

import math

import pytest

from repro.cache.block import AccessType
from repro.cmp.chip import TiledChip
from repro.designs import build_design
from repro.designs.base import BUSY, L2, OFF_CHIP, AccessOutcome
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import TraceSimulator, simulate_best_asr, simulate_workload, warm_page_tables
from repro.sim.latency import CpiModel
from repro.sim.sampling import ConfidenceInterval, sample_mean, speedup_interval, split_into_samples
from repro.sim.stats import SampleAccumulator, SimulationStats, _coarse_class
from repro.workloads.spec import get_workload
from repro.workloads.trace import Trace, TraceRecord

from .conftest import TEST_SCALE


class TestCpiModel:
    def test_busy_cycles(self):
        model = CpiModel(busy_cpi=0.8)
        record = TraceRecord(core=0, access_type=AccessType.LOAD, address=0, instructions=10)
        assert model.busy_cycles(record) == pytest.approx(8.0)

    def test_overlap_scales_components(self):
        model = CpiModel(busy_cpi=1.0, stall_factors={L2: 0.5, OFF_CHIP: 0.5})
        outcome = AccessOutcome(components={L2: 10.0, OFF_CHIP: 100.0})
        model.apply_overlap(outcome)
        assert outcome.components[L2] == pytest.approx(5.0)
        assert outcome.components[OFF_CHIP] == pytest.approx(50.0)

    def test_for_workload_uses_spec_busy_cpi(self):
        spec = get_workload("em3d")
        assert CpiModel.for_workload(spec).busy_cpi == spec.busy_cpi

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CpiModel(busy_cpi=0)
        with pytest.raises(ConfigurationError):
            CpiModel(busy_cpi=1.0, stall_factors={L2: 1.5})


class TestSimulationStats:
    def make_record(self, true_class="private", instructions=10):
        return TraceRecord(
            core=0,
            access_type=AccessType.LOAD,
            address=64,
            instructions=instructions,
            true_class=true_class,
        )

    def test_cpi_accumulation(self):
        stats = SimulationStats()
        outcome = AccessOutcome(components={L2: 20.0})
        stats.record(self.make_record(), outcome, busy_cycles=10.0)
        assert stats.instructions == 10
        assert stats.cpi == pytest.approx(3.0)
        assert stats.component_cpi(BUSY) == pytest.approx(1.0)
        assert stats.component_cpi(L2) == pytest.approx(2.0)

    def test_class_attribution(self):
        stats = SimulationStats()
        stats.record(self.make_record("private"), AccessOutcome(components={L2: 10.0}), 5.0)
        stats.record(self.make_record("shared_rw"), AccessOutcome(components={L2: 30.0}), 5.0)
        assert stats.class_component_cpi("private", L2) == pytest.approx(0.5)
        assert stats.class_component_cpi("shared", L2) == pytest.approx(1.5)
        assert stats.class_cpi("shared") == pytest.approx(1.5)

    def test_sample_accumulator_matches_per_record_path(self):
        """The fast engine's flat accumulator reproduces record() exactly.

        The accumulator also fuses the overlap scaling in, so the per-record
        path applies ``CpiModel.apply_overlap`` first.
        """
        model = CpiModel(busy_cpi=0.5)
        cases = [
            ("private", {L2: 10.0}, "l2_local", False, False),
            ("shared_rw", {L2: 30.0}, "l2_remote", False, False),
            ("shared_ro", {L2: 4.0, OFF_CHIP: 100.0}, "offchip", True, False),
            ("shared_rw", {"l1_to_l1": 25.0}, "l1_remote", False, True),
            ("instruction", {L2: 6.0}, "l2_remote", False, False),
        ]
        expected = SimulationStats()
        accumulator = SampleAccumulator(model.stall_factors)
        for true_class, components, hit_where, offchip, coherence in cases:
            record = self.make_record(true_class)
            scaled = AccessOutcome(
                components=dict(components),
                hit_where=hit_where,
                offchip=offchip,
                coherence=coherence,
            )
            model.apply_overlap(scaled)
            expected.record(record, scaled, model.busy_cycles(record))
            raw = AccessOutcome(
                components=dict(components),
                hit_where=hit_where,
                offchip=offchip,
                coherence=coherence,
            )
            accumulator.record_access(
                _coarse_class(record), record.instructions,
                model.busy_cycles(record), raw,
            )
        assert accumulator.to_stats().to_dict() == expected.to_dict()

    def test_shared_service_tracking(self):
        stats = SimulationStats()
        outcome = AccessOutcome(components={L2: 40.0}, coherence=True)
        stats.record(self.make_record("shared_rw"), outcome, 5.0)
        assert stats.shared_service["coherence"] == 1
        assert stats.shared_service_cpi("coherence") == pytest.approx(4.0)

    def test_offchip_and_hits_counters(self):
        stats = SimulationStats()
        stats.record(self.make_record(), AccessOutcome(offchip=True, hit_where="offchip"), 1.0)
        assert stats.offchip_accesses == 1
        assert stats.hits_by_location["offchip"] == 1
        assert stats.offchip_rate == 1.0

    def test_merge(self):
        a, b = SimulationStats(), SimulationStats()
        a.record(self.make_record(), AccessOutcome(components={L2: 10.0}), 5.0)
        b.record(self.make_record(), AccessOutcome(components={L2: 20.0}), 5.0)
        a.merge(b)
        assert a.accesses == 2
        assert a.cycles_by_component[L2] == pytest.approx(30.0)

    def test_breakdown_components_complete(self):
        stats = SimulationStats()
        stats.record(self.make_record(), AccessOutcome(components={L2: 1.0}), 1.0)
        breakdown = stats.cpi_breakdown()
        assert set(breakdown) == {BUSY, "l1_to_l1", L2, OFF_CHIP, "other", "reclassification"}
        assert stats.ipc == pytest.approx(1.0 / stats.cpi)


class TestSampling:
    def test_single_sample_has_zero_width(self):
        interval = sample_mean([2.0])
        assert interval.mean == 2.0 and interval.half_width == 0.0

    def test_confidence_interval(self):
        interval = sample_mean([1.0, 2.0, 3.0, 4.0])
        assert interval.mean == pytest.approx(2.5)
        assert interval.low < 2.5 < interval.high
        assert interval.num_samples == 4

    def test_empty_samples_rejected(self):
        with pytest.raises(SimulationError):
            sample_mean([])

    def test_split_into_samples_covers_everything(self):
        slices = split_into_samples(103, 8)
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 103
        assert len(slices) == 8

    def test_split_more_samples_than_items(self):
        slices = split_into_samples(3, 8)
        assert sum(s.stop - s.start for s in slices) == 3

    def test_speedup_interval(self):
        base = ConfidenceInterval(mean=2.0, half_width=0.1, num_samples=8)
        better = ConfidenceInterval(mean=1.0, half_width=0.05, num_samples=8)
        ratio = speedup_interval(base, better)
        assert ratio.mean == pytest.approx(2.0)
        assert ratio.half_width > 0

    def test_speedup_interval_direction(self):
        """Regression: the declared order is (baseline, improved).

        ``speedup_interval(baseline, improved)`` computes
        ``baseline.mean / improved.mean`` — a design that halves the CPI
        reports a 2x speedup, and swapping the arguments inverts the ratio.
        """
        baseline = ConfidenceInterval(mean=4.0, half_width=0.0, num_samples=4)
        improved = ConfidenceInterval(mean=1.0, half_width=0.0, num_samples=4)
        assert speedup_interval(baseline, improved).mean == pytest.approx(4.0)
        assert speedup_interval(improved, baseline).mean == pytest.approx(0.25)

    def test_speedup_interval_zero_improved_rejected(self):
        """The zero guard checks the denominator: the improved mean."""
        baseline = ConfidenceInterval(mean=2.0, half_width=0.1, num_samples=4)
        zero = ConfidenceInterval(mean=0.0, half_width=0.0, num_samples=4)
        with pytest.raises(SimulationError):
            speedup_interval(baseline, zero)
        # A zero baseline is fine: the ratio is simply 0.
        assert speedup_interval(zero, baseline).mean == 0.0

    def test_relative_error_uses_magnitude(self):
        negative = ConfidenceInterval(mean=-2.0, half_width=0.5, num_samples=4)
        assert negative.relative_error == pytest.approx(0.25)

    def test_relative_error_zero_mean(self):
        degenerate = ConfidenceInterval(mean=0.0, half_width=0.5, num_samples=4)
        assert degenerate.relative_error == math.inf
        clean = ConfidenceInterval(mean=0.0, half_width=0.0, num_samples=4)
        assert clean.relative_error == 0.0

    def test_speedup_interval_zero_mean_baseline_is_not_nan(self):
        """An unbounded relative error propagates as inf, never 0*inf=NaN."""
        fuzzy_zero = ConfidenceInterval(mean=0.0, half_width=0.1, num_samples=4)
        improved = ConfidenceInterval(mean=2.0, half_width=0.1, num_samples=4)
        interval = speedup_interval(fuzzy_zero, improved)
        assert interval.mean == 0.0
        assert interval.half_width == math.inf
        assert not math.isnan(interval.half_width)

    def test_overlap_detection(self):
        a = ConfidenceInterval(mean=1.0, half_width=0.2, num_samples=4)
        b = ConfidenceInterval(mean=1.3, half_width=0.2, num_samples=4)
        c = ConfidenceInterval(mean=2.0, half_width=0.1, num_samples=4)
        assert a.overlaps(b) and not a.overlaps(c)
        assert "±" in str(a)


class TestTraceSimulator:
    def test_empty_trace_rejected(self, chip16):
        design = build_design("S", chip16)
        simulator = TraceSimulator(design, CpiModel(busy_cpi=1.0))
        with pytest.raises(SimulationError):
            simulator.run(Trace([], workload="empty"))

    def test_bad_warmup_fraction_rejected(self, chip16):
        with pytest.raises(SimulationError):
            TraceSimulator(build_design("S", chip16), CpiModel(busy_cpi=1.0), warmup_fraction=1.0)

    def test_run_produces_consistent_result(self, chip16, oltp_trace):
        design = build_design("S", chip16)
        simulator = TraceSimulator(design, CpiModel(busy_cpi=1.0), warmup_fraction=0.25)
        result = simulator.run(oltp_trace)
        assert result.workload == "oltp-db2"
        assert result.design_letter == "S"
        assert result.cpi > 1.0
        assert result.cpi_confidence is not None
        assert math.isclose(
            result.cpi, sum(result.cpi_breakdown().values()), rel_tol=1e-9
        )
        assert result.stats.accesses == len(oltp_trace) - int(len(oltp_trace) * 0.25)

    def test_warm_page_tables_only_affects_rnuca(self, chip16, oltp_trace):
        shared = build_design("S", chip16)
        assert warm_page_tables(shared, oltp_trace) == 0
        rnuca = build_design("R", TiledChip(chip16.config))
        primed = warm_page_tables(rnuca, oltp_trace)
        assert primed > 0
        assert len(rnuca.policy.classifier.page_table) == primed

    def test_warm_page_tables_marks_shared_pages(self, chip16, oltp_trace):
        from repro.osmodel.page_table import PageClass

        rnuca = build_design("R", chip16)
        warm_page_tables(rnuca, oltp_trace)
        table = rnuca.policy.classifier.page_table
        classes = {entry.page_class for entry in table}
        assert PageClass.SHARED in classes and PageClass.PRIVATE in classes


class TestSimulateWorkload:
    def test_end_to_end_small(self):
        result = simulate_workload(
            "oltp-db2", "R", num_records=2500, scale=TEST_SCALE, seed=3
        )
        assert result.design == "rnuca"
        assert result.cpi > 0
        assert result.metadata["scale"] == TEST_SCALE
        assert "misclassification_rate" in result.metadata

    def test_deterministic_given_seed(self):
        a = simulate_workload("mix", "S", num_records=2000, scale=TEST_SCALE, seed=5)
        b = simulate_workload("mix", "S", num_records=2000, scale=TEST_SCALE, seed=5)
        assert a.cpi == pytest.approx(b.cpi)

    def test_speedup_and_normalised_breakdown(self):
        base = simulate_workload("mix", "P", num_records=2000, scale=TEST_SCALE)
        other = simulate_workload("mix", "S", num_records=2000, scale=TEST_SCALE)
        speedup = other.speedup_over(base)
        assert speedup == pytest.approx(base.cpi / other.cpi - 1.0)
        normalized = base.normalized_breakdown(base.cpi)
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_best_asr_reports_variants(self):
        result = simulate_best_asr(
            "mix", num_records=1500, scale=TEST_SCALE, include_adaptive=False
        )
        assert result.design_letter == "A"
        assert result.metadata["asr_variants_evaluated"] == 5
