"""Tests for the Table-1 system configurations."""

import pytest

from repro.cmp.config import (
    BLOCK_SIZE,
    CacheConfig,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(size_bytes=64 * 1024, associativity=2)
        assert cache.num_blocks == 1024
        assert cache.num_sets == 512

    def test_block_size_default_matches_paper(self):
        assert CacheConfig(size_bytes=1024, associativity=2).block_size == 64
        assert BLOCK_SIZE == 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=3 * 64 * 5, associativity=5)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, associativity=2)

    def test_rejects_negative_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, associativity=0)

    def test_scaled_keeps_power_of_two_sets(self):
        cache = CacheConfig(size_bytes=1024 * 1024, associativity=16)
        scaled = cache.scaled(32)
        assert scaled.num_sets & (scaled.num_sets - 1) == 0
        assert scaled.size_bytes < cache.size_bytes
        assert scaled.block_size == cache.block_size

    def test_scaled_by_one_is_identity(self):
        cache = CacheConfig(size_bytes=64 * 1024, associativity=2)
        assert cache.scaled(1) == cache

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, associativity=2).scaled(0)


class TestCoreConfig:
    def test_defaults_match_table1(self):
        core = CoreConfig()
        assert core.frequency_ghz == 2.0
        assert core.dispatch_width == 4
        assert core.rob_entries == 96
        assert core.pipeline_stages == 8

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(frequency_ghz=0)


class TestInterconnectConfig:
    def test_defaults_match_table1(self):
        net = InterconnectConfig()
        assert net.topology == "folded_torus"
        assert net.link_latency == 1
        assert net.router_latency == 2
        assert net.link_width_bytes == 32

    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(topology="hypercube")

    def test_num_nodes(self):
        assert InterconnectConfig(rows=4, cols=2).num_nodes == 8


class TestMemoryConfig:
    def test_latency_cycles_at_2ghz(self):
        memory = MemoryConfig()
        assert memory.latency_cycles(2.0) == 90

    def test_page_size_is_8kb(self):
        assert MemoryConfig().page_size == 8192

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(page_size=3000)


class TestSystemConfig:
    def test_server_16core_matches_table1(self):
        config = SystemConfig.server_16core()
        assert config.num_tiles == 16
        assert config.l2_slice.size_bytes == 1024 * 1024
        assert config.l2_slice.associativity == 16
        assert config.l2_slice.hit_latency == 14
        assert config.l1d.size_bytes == 64 * 1024
        assert config.aggregate_l2_bytes == 16 * 1024 * 1024
        assert config.memory_latency_cycles == 90
        assert config.interconnect.rows == 4 and config.interconnect.cols == 4

    def test_multiprogrammed_8core_matches_table1(self):
        config = SystemConfig.multiprogrammed_8core()
        assert config.num_tiles == 8
        assert config.l2_slice.size_bytes == 3 * 1024 * 1024
        assert config.l2_slice.associativity == 12
        assert config.l2_slice.hit_latency == 25
        assert config.num_memory_controllers == 2

    def test_for_workload_category(self):
        assert SystemConfig.for_workload_category("server").num_tiles == 16
        assert SystemConfig.for_workload_category("scientific").num_tiles == 16
        assert SystemConfig.for_workload_category("multiprogrammed").num_tiles == 8

    def test_for_unknown_category_raises(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.for_workload_category("graphics")

    def test_scaled_preserves_latencies_and_topology(self):
        config = SystemConfig.server_16core()
        scaled = config.scaled(32)
        assert scaled.l2_slice.hit_latency == config.l2_slice.hit_latency
        assert scaled.num_tiles == config.num_tiles
        assert scaled.memory_latency_cycles == config.memory_latency_cycles
        assert scaled.l2_slice.size_bytes < config.l2_slice.size_bytes
        assert scaled.page_size < config.page_size

    def test_scaled_page_is_multiple_of_blocks(self):
        scaled = SystemConfig.server_16core().scaled(64)
        assert scaled.page_size % scaled.block_size == 0
        assert scaled.blocks_per_page() >= 4

    def test_memory_controllers_one_per_four_cores(self):
        assert SystemConfig.server_16core().num_memory_controllers == 4

    def test_tile_count_must_match_topology(self):
        config = SystemConfig.server_16core()
        with pytest.raises(ConfigurationError):
            SystemConfig(
                name="bad",
                num_tiles=8,
                core=config.core,
                l1i=config.l1i,
                l1d=config.l1d,
                l2_slice=config.l2_slice,
                interconnect=config.interconnect,
                memory=config.memory,
            )

    def test_instruction_cluster_size_must_be_power_of_two(self):
        config = SystemConfig.server_16core()
        with pytest.raises(ConfigurationError):
            SystemConfig(
                name="bad",
                num_tiles=16,
                core=config.core,
                l1i=config.l1i,
                l1d=config.l1d,
                l2_slice=config.l2_slice,
                interconnect=config.interconnect,
                memory=config.memory,
                instruction_cluster_size=3,
            )

    def test_summary_mentions_key_parameters(self):
        text = SystemConfig.server_16core().summary()
        assert "16" in text
        assert "folded_torus" in text
        assert "1024 KB" in text
