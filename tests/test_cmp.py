"""Tests for the tiled-chip assembly and the memory system."""

import pytest

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.cmp.memory import MemorySystem
from repro.interconnect.network import NetworkModel


class TestTile:
    def test_tile_structures(self, chip16, config16):
        tile = chip16.tile(3)
        assert tile.tile_id == 3
        assert tile.l1i.config == config16.l1i
        assert tile.l2.config == config16.l2_slice
        assert tile.directory.home == 3
        assert tile.rid is None

    def test_l1_for_selects_instruction_or_data(self, chip16):
        tile = chip16.tile(0)
        assert tile.l1_for(instruction=True) is tile.l1i
        assert tile.l1_for(instruction=False) is tile.l1d

    def test_reset_stats(self, chip16):
        tile = chip16.tile(0)
        tile.l2.lookup(0x1)
        tile.reset_stats()
        assert tile.l2.misses == 0


class TestTiledChip:
    def test_tile_count_and_topology(self, chip16, chip8):
        assert chip16.num_tiles == 16
        assert chip8.num_tiles == 8
        assert chip16.distance(0, 3) == 1  # torus wrap-around

    def test_block_and_page_helpers(self, chip16, config16):
        assert chip16.block_address(config16.block_size) == 1
        assert chip16.page_number(config16.page_size) == 1
        block = chip16.block_address(config16.page_size)
        assert chip16.page_of_block(block) == 1

    def test_home_slice_uses_bits_above_set_index(self, chip16, config16):
        sets = config16.l2_slice.num_sets
        assert chip16.home_slice(0) == 0
        assert chip16.home_slice(sets) == 1
        assert chip16.home_slice(sets * (config16.num_tiles + 1)) == 1

    def test_home_slice_distribution_is_uniform(self, chip16, config16):
        from collections import Counter

        sets = config16.l2_slice.num_sets
        homes = Counter(chip16.home_slice(b * sets) for b in range(160))
        assert len(homes) == 16
        assert max(homes.values()) == min(homes.values())

    def test_interleave_bits_width(self, chip16, config16):
        sets = config16.l2_slice.num_sets
        assert chip16.interleave_bits(sets * 3, width=2) == 3

    def test_aggregate_occupancy_and_reset(self, chip16):
        chip16.tile(0).l2.insert(0x1)
        assert chip16.aggregate_l2_occupancy() > 0
        chip16.reset_stats()
        assert chip16.network.messages == 0


class TestMemorySystem:
    def test_controller_count_and_placement(self, config16):
        network = NetworkModel(config16.interconnect)
        memory = MemorySystem(config16, network)
        assert len(memory.controllers) == 4
        assert len({c.tile_id for c in memory.controllers}) == 4

    def test_access_latency_includes_network(self, config16):
        network = NetworkModel(config16.interconnect)
        memory = MemorySystem(config16, network)
        controller = memory.controller_for(0)
        latency = memory.access(controller.tile_id, 0)
        assert latency >= config16.memory_latency_cycles
        remote_latency = memory.access((controller.tile_id + 8) % 16, 0)
        assert remote_latency > latency

    def test_page_interleaving_spreads_pages(self, config16):
        network = NetworkModel(config16.interconnect)
        memory = MemorySystem(config16, network)
        blocks_per_page = config16.page_size // config16.block_size
        controllers = {
            memory.controller_for(page * blocks_per_page).controller_id
            for page in range(8)
        }
        assert len(controllers) == len(memory.controllers)

    def test_read_write_counters(self, config16):
        network = NetworkModel(config16.interconnect)
        memory = MemorySystem(config16, network)
        memory.access(0, 0x1, write=False)
        memory.access(0, 0x2, write=True)
        assert memory.total_reads == 1
        assert memory.total_writes == 1
        assert memory.total_accesses == 2
        memory.reset_stats()
        assert memory.total_accesses == 0


class TestFullSizeConfigs:
    def test_full_size_chip_constructs(self):
        chip = TiledChip(SystemConfig.server_16core())
        assert chip.config.l2_slice.num_sets == 1024
        assert chip.num_tiles == 16

    def test_full_size_8core_chip_constructs(self):
        chip = TiledChip(SystemConfig.multiprogrammed_8core())
        assert chip.num_tiles == 8
