"""Tests for the Belady/OPT replacement oracle (repro.analysis.oracle).

The headline property: on a single demand-fill cache array driven
probe-then-fill — the setting where Belady's MIN is provably offline
optimal — the oracle's miss count never exceeds any online policy's on
the same geometry and the same access stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.oracle import (
    NEVER,
    BeladyPolicy,
    _FutureIndex,
    install_belady,
    placement_regret,
    simulate_with_oracle,
)
from repro.cache.cache_array import CacheArray
from repro.cache.policies import POLICIES, build_policy
from repro.cmp.chip import TiledChip
from repro.cmp.config import CacheConfig, SystemConfig
from repro.designs import build_design
from repro.sim.engine import generate_workload_trace, resolve_workload

from .conftest import TEST_SCALE

#: Online policies the optimality property is checked against ("lru" is the
#: native inlined path: build_policy returns None for it).
ONLINE_POLICIES = tuple(POLICIES)

#: (sets, ways) geometries small enough to force evictions quickly.
GEOMETRIES = ((1, 2), (2, 2), (1, 4), (4, 1))


def _replay_misses(addresses, sets, ways, policy) -> int:
    """Drive one array probe-then-fill; return its miss count."""
    cache = CacheArray(CacheConfig(size_bytes=sets * ways * 64, associativity=ways))
    if policy is not None:
        cache.set_policy(policy)
    for address in addresses:
        if cache.lookup_block(address) is None:
            cache.insert_block(address)
    return cache.misses


class TestOptOptimalityProperty:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=23), min_size=1, max_size=160
        ),
        geometry=st.sampled_from(GEOMETRIES),
    )
    @settings(max_examples=40, deadline=None)
    def test_opt_misses_at_most_every_online_policy(self, addresses, geometry):
        """Belady's MIN is a lower bound on misses for any online policy."""
        sets, ways = geometry
        future = _FutureIndex(np.array(addresses, dtype=np.int64))
        oracle_misses = _replay_misses(
            addresses, sets, ways, BeladyPolicy(sets, ways, future)
        )
        for name in ONLINE_POLICIES:
            online = build_policy(name, sets, ways, seed=7)
            online_misses = _replay_misses(addresses, sets, ways, online)
            assert oracle_misses <= online_misses, (
                f"oracle missed {oracle_misses}x but {name} only "
                f"{online_misses}x on {sets}x{ways}"
            )

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=23), min_size=1, max_size=160
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_cold_misses_are_a_lower_bound(self, addresses):
        """The oracle still pays every compulsory (first-touch) miss."""
        future = _FutureIndex(np.array(addresses, dtype=np.int64))
        misses = _replay_misses(addresses, 1, 2, BeladyPolicy(1, 2, future))
        assert misses >= len(set(addresses))


class TestFutureIndex:
    def test_consume_advances_clock_in_trace_order(self):
        future = _FutureIndex(np.array([5, 7, 5, 9, 7], dtype=np.int64))
        future.consume(5)  # position 0
        assert future.clock == 0
        future.consume(7)  # position 1
        assert future.clock == 1
        assert future.next_use(5) == 2.0
        assert future.next_use(9) == 3.0

    def test_next_use_skips_stale_positions(self):
        """Occurrences already passed by the clock are not future uses."""
        future = _FutureIndex(np.array([3, 3, 3], dtype=np.int64))
        future.consume(3)
        future.consume(3)
        assert future.clock == 1
        assert future.next_use(3) == 2.0
        future.consume(3)
        assert future.next_use(3) is NEVER

    def test_unknown_address_is_never_used(self):
        future = _FutureIndex(np.array([1, 2], dtype=np.int64))
        assert future.next_use(99) is NEVER
        future.consume(99)  # harmless no-op
        assert future.clock == -1

    def test_pending_marker_suppresses_double_consume(self):
        """A probe's own fill must not consume a second occurrence."""
        future = _FutureIndex(np.array([4, 4], dtype=np.int64))
        policy = BeladyPolicy(1, 2, future)
        policy.on_probe(0, 4)
        assert future.clock == 0
        policy.on_insert(0, 4)  # the fill of the probed address
        assert future.clock == 0  # not advanced to position 1
        assert future.next_use(4) == 1.0


class TestBeladyVictim:
    def test_evicts_farthest_next_use(self):
        trace = np.array([1, 2, 3, 2, 1], dtype=np.int64)
        future = _FutureIndex(trace)
        policy = BeladyPolicy(1, 2, future)
        # Replay positions 0..2 by hand: 1 and 2 resident, 3 incoming.
        for address in (1, 2):
            policy.on_probe(0, address)
            policy.on_insert(0, address)
        policy.on_probe(0, 3)
        # Next uses: 2 at position 3, 1 at position 4 -> evict 1.
        assert policy.victim(0, {1: None, 2: None}, 3) == 1

    def test_never_used_again_beats_any_distance(self):
        future = _FutureIndex(np.array([1, 2, 1], dtype=np.int64))
        policy = BeladyPolicy(1, 2, future)
        for address in (1, 2):
            policy.on_probe(0, address)
            policy.on_insert(0, address)
        # 2 never recurs after its consumed occurrence -> immediate victim.
        assert policy.victim(0, {1: None, 2: None}, 9) == 2


class TestOracleReplay:
    def test_install_belady_covers_every_slice(self):
        spec, dyn = resolve_workload("mix")
        config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
        trace = generate_workload_trace(spec, dyn, config, 500, seed=1, scale=TEST_SCALE)
        chip = TiledChip(config)
        design = build_design("R", chip)
        future = install_belady(design, trace, config)
        assert design.l2_policy == "belady"
        policies = [tile.l2.policy for tile in chip.tiles]
        assert all(isinstance(policy, BeladyPolicy) for policy in policies)
        # One shared clock: every slice consults the same future index.
        assert all(policy._future is future for policy in policies)

    def test_oracle_result_is_labelled(self):
        result = simulate_with_oracle(
            "mix", "S", num_records=2000, scale=TEST_SCALE, seed=3
        )
        assert result.metadata["l2_policy"] == "belady"
        assert result.cpi > 0

    def test_regret_is_nonnegative_for_exact_designs(self):
        """S/I (single-residency, probe-then-fill) cannot beat the oracle."""
        rows = placement_regret(
            "oltp-db2",
            designs=("S", "I"),
            num_records=20_000,
            scale=TEST_SCALE,
            seed=0,
        )
        assert {row.design for row in rows} == {"S", "I"}
        for row in rows:
            assert row.policy == "lru"
            assert row.cpi_regret >= 0, row.to_dict()
            assert row.to_dict()["cpi_regret_pct"] == pytest.approx(
                row.cpi_regret_pct, abs=1e-3
            )
