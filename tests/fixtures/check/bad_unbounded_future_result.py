"""Bad: joins a pool future with no deadline (no-unbounded-future-result)."""

from __future__ import annotations

from concurrent.futures import Future


def join(future: Future[int]) -> int:
    return future.result()
