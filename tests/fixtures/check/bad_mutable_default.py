"""Bad: a shared mutable default argument (no-mutable-default)."""


def collect(item: int, into: list[int] = []) -> list[int]:
    into.append(item)
    return into
