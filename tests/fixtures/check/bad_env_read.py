"""Bad: raw environment access (knobs-env-registry)."""

import os


def jobs() -> int:
    return int(os.environ.get("RNUCA_JOBS", "1"))
