"""Bad: missing parameter and return annotations (typed-defs)."""


def scale(value, factor=2):
    return value * factor
