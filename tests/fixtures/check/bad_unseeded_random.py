"""Bad: draws from the global RNG (determinism-unseeded-random)."""

import random


def jitter() -> float:
    return random.random()
