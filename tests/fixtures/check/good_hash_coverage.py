"""Good: every field of the content-addressed dataclass is hashed."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Key:
    workload: str
    seed: int
    extra: str
    l2_policy: str = "lru"

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "extra": self.extra,
            "l2_policy": self.l2_policy,
        }

    def content_hash(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
