"""Good: every field of the content-addressed dataclass is hashed."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Key:
    workload: str
    seed: int
    extra: str

    def to_dict(self) -> dict[str, object]:
        return {"workload": self.workload, "seed": self.seed, "extra": self.extra}

    def content_hash(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
