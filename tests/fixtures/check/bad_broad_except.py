"""Bad: a catch-all with no suppression marker (no-broad-except)."""

from collections.abc import Callable


def swallow(action: Callable[[], None]) -> None:
    try:
        action()
    except Exception:
        return
