"""Bad: ``extra`` never reaches to_dict()/content_hash (hash-coverage).

The regression this pins: a content-addressed dataclass gains a field,
``to_dict`` is not updated, and two distinct configurations silently
share one cache entry.
"""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Key:
    workload: str
    seed: int
    extra: str

    def to_dict(self) -> dict[str, object]:
        return {"workload": self.workload, "seed": self.seed}

    def content_hash(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
