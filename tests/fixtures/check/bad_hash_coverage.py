"""Bad: ``extra``/``l2_policy`` never reach to_dict()/content_hash (hash-coverage).

The regression this pins: a content-addressed dataclass gains a field —
a new sweep axis such as the replacement policy — ``to_dict`` is not
updated, and two distinct configurations silently share one cache entry.
"""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Key:
    workload: str
    seed: int
    extra: str
    l2_policy: str = "lru"

    def to_dict(self) -> dict[str, object]:
        return {"workload": self.workload, "seed": self.seed}

    def content_hash(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
