"""Good: the catch-all carries an explicit marker with a reason."""

from collections.abc import Callable


def guard(action: Callable[[], None]) -> str:
    try:
        action()
    # repro: allow-broad-except(recorded and surfaced to the caller)
    except Exception as error:
        return repr(error)
    return "ok"
