"""Bad: reads the wall clock (determinism-wall-clock)."""

import time


def stamp() -> float:
    return time.time()
