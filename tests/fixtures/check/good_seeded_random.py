"""Good: every draw comes from an explicitly seeded generator."""

import random


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
