"""Good: environment reads go through the repro.knobs registry."""

from repro import knobs


def jobs() -> int:
    return knobs.jobs()
