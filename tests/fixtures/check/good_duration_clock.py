"""Good: duration clocks are legal; a wall-clock read carries a marker."""

import time


def elapsed(start: float) -> float:
    return time.perf_counter() - start


def report_stamp() -> str:
    # repro: allow-wall-clock(report metadata only; never feeds simulation)
    return time.strftime("%Y-%m-%d")
