"""Good: default to None and build the object inside the function."""


def collect(item: int, into: list[int] | None = None) -> list[int]:
    if into is None:
        into = []
    into.append(item)
    return into
