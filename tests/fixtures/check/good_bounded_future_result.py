"""Good: bounds the join and cancels on timeout (no-unbounded-future-result)."""

from __future__ import annotations

from concurrent.futures import Future


def join(future: Future[int]) -> int:
    try:
        return future.result(timeout=30.0)
    except TimeoutError:
        future.cancel()
        raise
