"""Good: complete parameter and return annotations."""


def scale(value: int, factor: int = 2) -> int:
    return value * factor
