"""Tests for the columnar trace representation and its record view."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.block import AccessType
from repro.errors import TraceError
from repro.workloads.trace import (
    ACCESS_TYPE_BY_CODE,
    INSTRUCTION_CODE,
    LOAD_CODE,
    NO_THREAD,
    STORE_CODE,
    Trace,
    TraceColumns,
    TraceRecord,
)


def make_records():
    return [
        TraceRecord(core=0, access_type=AccessType.LOAD, address=0x1000,
                    instructions=10, true_class="shared_rw"),
        TraceRecord(core=1, access_type=AccessType.INSTRUCTION, address=0x2000,
                    instructions=5, true_class="instruction"),
        TraceRecord(core=2, access_type=AccessType.STORE, address=0x3040,
                    instructions=7, thread_id=9, true_class="private"),
        TraceRecord(core=0, access_type=AccessType.LOAD, address=0x1000,
                    instructions=3),
    ]


class TestColumnarStorage:
    def test_records_round_trip_through_columns(self):
        records = make_records()
        trace = Trace(records, workload="t")
        assert trace.records == records
        assert len(trace) == 4
        assert trace[2].thread == 9
        assert [r.core for r in trace] == [0, 1, 2, 0]

    def test_columns_match_records(self):
        trace = Trace(make_records())
        cols = trace.columns
        assert cols.core.tolist() == [0, 1, 2, 0]
        assert cols.access_type.tolist() == [
            LOAD_CODE, INSTRUCTION_CODE, STORE_CODE, LOAD_CODE,
        ]
        assert cols.address.tolist() == [0x1000, 0x2000, 0x3040, 0x1000]
        assert cols.thread_id.tolist() == [NO_THREAD, NO_THREAD, 9, NO_THREAD]
        assert cols.class_table[cols.true_class[3]] is None

    def test_hot_columns_resolve_defaults(self):
        trace = Trace(make_records())
        hot = trace.hot_columns()
        assert hot.thread == [0, 1, 9, 0]  # thread defaults to core
        assert hot.coarse_class == ["shared", "instruction", "private", "shared"]
        assert hot.true_class == ["shared_rw", "instruction", "private", None]

    def test_hot_rows_carry_block_and_page_numbers(self):
        trace = Trace(make_records())
        rows = trace.hot_rows(64, 4096)
        assert len(rows) == 4
        core, code, address, instructions, thread, true_class, coarse, block, page = rows[2]
        assert (core, code, address) == (2, STORE_CODE, 0x3040)
        assert block == 0x3040 >> 6 and page == 0x3040 >> 12
        # Cached per geometry.
        assert trace.hot_rows(64, 4096) is rows

    def test_block_and_page_numbers_precomputed(self):
        trace = Trace(make_records())
        assert trace.block_numbers(64) == [a >> 6 for a in (0x1000, 0x2000, 0x3040, 0x1000)]
        assert trace.page_numbers(4096) == [a >> 12 for a in (0x1000, 0x2000, 0x3040, 0x1000)]
        assert trace.page_number_array(4096).dtype == np.int64

    def test_total_instructions_and_class_mix(self):
        trace = Trace(make_records())
        assert trace.total_instructions == 25
        mix = trace.class_mix()
        assert mix["shared_rw"] == 0.25 and mix["unknown"] == 0.25

    def test_records_for_core(self):
        trace = Trace(make_records())
        assert [r.address for r in trace.records_for_core(0)] == [0x1000, 0x1000]

    def test_access_type_code_table_is_consistent(self):
        for code, kind in enumerate(ACCESS_TYPE_BY_CODE):
            assert ACCESS_TYPE_BY_CODE[code] is kind

    def test_from_columns_validates(self):
        with pytest.raises(TraceError):
            TraceColumns(
                core=np.array([-1], dtype=np.int64),
                access_type=np.array([0], dtype=np.int8),
                address=np.array([0], dtype=np.int64),
                instructions=np.array([1], dtype=np.int64),
                thread_id=np.array([NO_THREAD], dtype=np.int64),
                true_class=np.array([0], dtype=np.int16),
                class_table=(None,),
            ).validate()
        with pytest.raises(TraceError):
            TraceColumns(
                core=np.array([0, 1], dtype=np.int64),
                access_type=np.array([0], dtype=np.int8),
                address=np.array([0, 0], dtype=np.int64),
                instructions=np.array([1, 1], dtype=np.int64),
                thread_id=np.array([NO_THREAD, NO_THREAD], dtype=np.int64),
                true_class=np.array([0, 0], dtype=np.int16),
                class_table=(None,),
            ).validate()

    def test_save_load_round_trip(self, tmp_path):
        trace = Trace(make_records(), workload="rt", metadata={"k": 1})
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.records == trace.records
        assert loaded.workload == "rt"
        assert loaded.num_cores == trace.num_cores
        assert loaded.metadata == {"k": 1}

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.records == []
        assert trace.class_mix() == {}

    def test_oversized_address_raises_trace_error(self):
        """Columnar int64 storage rejects >=2**63 addresses with a clear error."""
        record = TraceRecord(core=0, access_type=AccessType.LOAD, address=2**63)
        with pytest.raises(TraceError, match="64-bit"):
            Trace([record])
