"""Tests for the seeded fault-injection registry and the hardened runner.

The contract under test is the chaos claim in miniature: every injected
fault — a crashed pool worker, a corrupt store entry, an injected inline
failure — is absorbed by retry/quarantine machinery whose draws are pure
functions of ``(seed, site, key, sequence)``, so outcomes replay exactly
and the surviving results are bit-identical to a fault-free run.
"""

import json
import threading

import pytest

import repro.sim.runner as runner_module
from repro.errors import SimulationError
from repro.faults import (
    FAULT_SITES,
    FaultConfigError,
    FaultInjector,
    FaultPlan,
    backoff_with_jitter,
    default_fault_plan,
    fault_draw,
    parse_faults,
)
from repro.sim.runner import BatchRunner, ExperimentPoint, ResultStore
from repro.workloads.store import TraceKey, TraceStore
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE

RECORDS = 600


def make_point(workload="mix", design="P", seed=3):
    return ExperimentPoint.make(
        workload, design, num_records=RECORDS, scale=TEST_SCALE, seed=seed
    )


class TestParsing:
    def test_full_plan_round_trips_through_describe(self):
        text = "worker-crash:p=0.1;store-io:p=0.05;slow-sim:p=0.02,ms=500;client-disconnect:p=0.05"
        plan = FaultPlan.parse(text, seed=7)
        assert [spec.site for spec in plan.specs] == list(FAULT_SITES)
        assert plan.spec_for("slow-sim").delay_ms == 500.0
        assert plan.seed == 7
        assert plan.describe() == text

    def test_max_fires_setting(self):
        (spec,) = parse_faults("worker-crash:p=1.0,max=1")
        assert spec.max_fires == 1
        assert "max=1" in FaultPlan(specs=(spec,)).describe()

    @pytest.mark.parametrize(
        "text",
        [
            "meteor-strike:p=0.1",  # unknown site
            "worker-crash",  # missing p
            "worker-crash:p=1.5",  # probability out of range
            "worker-crash:p=-0.1",
            "worker-crash:p=abc",  # unparsable value
            "worker-crash:0.1",  # not name=value
            "slow-sim:p=0.1,ms=-5",  # negative delay
            "worker-crash:p=0.1,max=-1",  # negative cap
            "worker-crash:p=0.1,fuse=3",  # unknown setting
            "worker-crash:p=0.1;worker-crash:p=0.2",  # duplicate site
        ],
    )
    def test_malformed_plans_fail_loudly(self, text):
        with pytest.raises(FaultConfigError):
            parse_faults(text)

    def test_default_plan_is_none_without_the_knob(self):
        assert default_fault_plan() is None

    def test_default_plan_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("RNUCA_FAULTS", "store-io:p=0.5")
        monkeypatch.setenv("RNUCA_FAULT_SEED", "11")
        plan = default_fault_plan()
        assert plan.spec_for("store-io").probability == 0.5
        assert plan.seed == 11


class TestDraws:
    def test_draws_are_pure_and_sequence_addressed(self):
        a = fault_draw(3, "worker-crash", "abc", 0)
        assert a == fault_draw(3, "worker-crash", "abc", 0)
        assert 0.0 <= a < 1.0
        # Any input changing changes the draw (independence across retries,
        # sites, keys and seeds).
        assert a != fault_draw(3, "worker-crash", "abc", 1)
        assert a != fault_draw(3, "store-io", "abc", 0)
        assert a != fault_draw(3, "worker-crash", "abd", 0)
        assert a != fault_draw(4, "worker-crash", "abc", 0)

    def test_backoff_is_bounded_exponential_with_jitter(self):
        delays = [
            backoff_with_jitter(0, "abc", attempt, base_s=0.05, cap_s=1.0)
            for attempt in range(12)
        ]
        assert delays == [
            backoff_with_jitter(0, "abc", attempt, base_s=0.05, cap_s=1.0)
            for attempt in range(12)
        ]
        for attempt, delay in enumerate(delays):
            exponential = min(1.0, 0.05 * 2**attempt)
            assert exponential / 2 <= delay <= exponential
        assert max(delays) <= 1.0  # the cap holds forever

    def test_injector_occurrence_counter_gives_independent_draws(self):
        plan = FaultPlan.parse("store-io:p=0.5", seed=0)
        injector = FaultInjector(plan)
        outcomes = [injector.fires("store-io", "key") for _ in range(64)]
        # The occurrence counter supplies the sequence number, so the series
        # replays exactly from the pure draw function.
        assert outcomes == [
            fault_draw(0, "store-io", "key", i) < 0.5 for i in range(64)
        ]
        assert any(outcomes) and not all(outcomes)  # p=0.5 over 64 draws
        assert injector.counters()["store-io"] == sum(outcomes)

    def test_max_fires_caps_the_injector(self):
        injector = FaultInjector(FaultPlan.parse("store-io:p=1.0,max=2"))
        fired = [injector.fires("store-io", "key") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_zero_probability_and_unplanned_sites_never_fire(self):
        injector = FaultInjector(FaultPlan.parse("store-io:p=0.0"))
        assert not injector.fires("store-io", "key")
        assert not injector.fires("worker-crash", "key", sequence=0)
        assert injector.delay_s("slow-sim") == 0.0


class TestStoreQuarantine:
    def test_corrupt_json_is_quarantined_and_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        point = make_point()
        path = store.path_for(point)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(point) is None
        assert not path.exists()  # moved aside, not deleted
        assert store.quarantined == 1
        assert [p.name for p in store.quarantined_files()] == [path.name]

    def test_wrong_shape_json_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        point = make_point()
        path = store.path_for(point)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"point": point.to_dict(), "result": {"bogus": 1}}),
            encoding="utf-8",
        )
        assert store.get(point) is None
        assert store.quarantined == 1

    def test_injected_store_io_degrades_to_miss_without_quarantine(self, tmp_path):
        faulty = ResultStore(
            tmp_path / "results", faults=FaultPlan.parse("store-io:p=1.0")
        )
        point = make_point()
        result = runner_module.execute_point(point)
        faulty.put(point, result)
        assert faulty.get(point) is None  # injected read failure
        assert faulty.quarantined == 0  # the file was never touched
        clean = ResultStore(tmp_path / "results")
        assert clean.get(point) is not None  # evidence: the entry is intact

    def test_corrupt_trace_is_quarantined(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        key = TraceKey.make(
            "mix",
            num_records=RECORDS,
            scale=TEST_SCALE,
            seed=3,
            spec=get_workload("mix"),
        )
        store.directory.mkdir(parents=True)
        store.path_for(key).write_bytes(b"this is not an npz archive")
        assert store.get(key) is None
        assert store.quarantined == 1
        assert [p.name for p in store.quarantined_files()] == [key.filename]

    def test_injected_trace_io_leaves_the_file_alone(self, tmp_path, oltp_trace):
        faulty = TraceStore(
            tmp_path / "traces", faults=FaultPlan.parse("store-io:p=1.0")
        )
        key = TraceKey.make(
            "oltp-db2",
            num_records=RECORDS,
            scale=TEST_SCALE,
            seed=7,
            spec=get_workload("oltp-db2"),
        )
        faulty.put(key, oltp_trace)
        assert faulty.get(key) is None
        assert faulty.quarantined == 0
        assert TraceStore(tmp_path / "traces").get(key) is not None


class TestRunnerRecovery:
    def test_inline_injected_crash_is_retried_to_success(self, tmp_path):
        runner = BatchRunner(
            store=ResultStore(tmp_path / "results"),
            jobs=1,
            faults=FaultPlan.parse("worker-crash:p=1.0,max=1"),
            point_retries=3,
        )
        result, status = runner.run_point(make_point())
        assert status == "executed"
        assert result.cpi > 0
        assert runner.stats_snapshot()["retries"] == 1

    def test_inline_retry_budget_exhaustion_fails_loudly(self, tmp_path):
        runner = BatchRunner(
            store=ResultStore(tmp_path / "results"),
            jobs=1,
            faults=FaultPlan.parse("worker-crash:p=1.0"),
            point_retries=2,
        )
        with pytest.raises(SimulationError, match="failed after 3 attempts"):
            runner.run_point(make_point())
        assert runner.stats_snapshot()["retries"] == 2
        assert not runner._inflight

    def test_result_matches_fault_free_run_bit_for_bit(self, tmp_path):
        point = make_point(design="R")
        faulty = BatchRunner(
            store=ResultStore(tmp_path / "faulty"),
            jobs=1,
            faults=FaultPlan.parse("worker-crash:p=1.0,max=2;store-io:p=1.0,max=4"),
            point_retries=4,
        )
        injected, _ = faulty.run_point(point)
        clean, _ = BatchRunner(
            store=ResultStore(tmp_path / "clean"), jobs=1
        ).run_point(point)
        assert json.dumps(injected.to_dict(), sort_keys=True) == json.dumps(
            clean.to_dict(), sort_keys=True
        )

    def test_pool_worker_crash_rebuilds_pool_and_retries(self, tmp_path):
        """A real os._exit in a pool worker -> BrokenProcessPool -> recovery."""
        point = make_point(design="P", seed=5)
        # Find a seed whose draw crashes attempt 0 but spares attempt 1, so
        # the test pins crash->rebuild->success without relying on max_fires
        # (which cannot survive a pool rebuild: fresh workers, fresh
        # injectors).
        seed = next(
            s
            for s in range(500)
            if fault_draw(s, "worker-crash", point.content_hash, 0) < 0.6
            and fault_draw(s, "worker-crash", point.content_hash, 1) >= 0.6
        )
        with BatchRunner(
            store=ResultStore(tmp_path / "results"),
            jobs=2,
            faults=FaultPlan.parse("worker-crash:p=0.6", seed=seed),
            point_retries=2,
        ) as runner:
            result, status = runner.run_point(point)
            stats = runner.stats_snapshot()
        assert status == "executed"
        assert result.cpi > 0
        assert stats["pool_rebuilds"] >= 1
        assert stats["retries"] >= 1
        assert stats["pool_generation"] >= 2

    def test_crash_propagates_to_joiners_then_slot_clears_and_retry_works(
        self, tmp_path
    ):
        """Satellite: the primary crashes while N threads join the same key.

        Every joiner must see the error, the in-flight slot must clear, and
        a later request for the same point must succeed once injection is
        off.
        """
        point = make_point(design="R", seed=9)
        runner = BatchRunner(
            store=ResultStore(tmp_path / "results"),
            jobs=2,
            faults=FaultPlan.parse("worker-crash:p=1.0"),
            point_retries=0,
        )
        barrier = threading.Barrier(4)
        outcomes: list[str] = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                runner.run_point(point)
                with lock:
                    outcomes.append("ok")
            except SimulationError:
                with lock:
                    outcomes.append("error")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert outcomes == ["error"] * 4  # owner and every joiner failed
        assert not runner._inflight  # the slot was cleared

        # Injection off: the crash discarded the pool, so the next request
        # builds a clean one and the very same point now succeeds.
        runner.faults = None
        runner._injector = None
        with runner:
            result, status = runner.run_point(point)
        assert status == "executed"
        assert result.cpi > 0
