"""Tests for ``repro bench`` and the engine benchmark module."""

from __future__ import annotations

import json

from repro.cli import main
from repro.cmp.config import SystemConfig
from repro.sim.bench import bench_design, run_bench, run_trace_bench
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE

BENCH_ARGS = [
    "bench",
    "--designs", "shared,rnuca",
    "--workload", "mix",
    "--records", "1500",
    "--scale", str(TEST_SCALE),
    "--repeats", "1",
]


def test_bench_cli_writes_json(tmp_path, capsys):
    output = tmp_path / "BENCH_engine.json"
    assert main(BENCH_ARGS + ["--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Engine throughput" in out and str(output) in out

    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "trace-engine-records-per-sec"
    assert payload["workload"] == "mix"
    assert payload["records"] == 1500
    assert [r["design"] for r in payload["results"]] == ["S", "R"]
    for result in payload["results"]:
        assert result["fast_records_per_sec"] > 0
        assert result["batch_records_per_sec"] > 0
        assert result["reference_records_per_sec"] > 0
        assert result["speedup"] > 0
        assert result["batch_speedup"] > 0
        # Every bench run doubles as a three-way equivalence check.
        assert result["stats_match"] is True
        assert result["batch_stats_match"] is True


def test_bench_cli_quick_defaults(tmp_path, capsys):
    output = tmp_path / "quick.json"
    args = [
        "bench", "--quick", "--designs", "private",
        "--workload", "mix", "--records", "1200",
        "--scale", str(TEST_SCALE), "--output", str(output),
    ]
    assert main(args) == 0
    payload = json.loads(output.read_text())
    from repro.sim.bench import QUICK_BENCH_REPEATS

    assert payload["repeats"] == QUICK_BENCH_REPEATS  # --quick lowers repeats
    assert payload["results"][0]["design"] == "P"


def test_bench_design_measures_all_engines():
    spec = get_workload("mix")
    config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
    trace = SyntheticTraceGenerator(spec, config, seed=1, scale=TEST_SCALE).generate(1200)
    result = bench_design("R", spec, config, trace, repeats=1)
    assert result.design == "R" and result.design_name == "rnuca"
    assert result.stats_match
    assert result.records == 1200
    assert result.speedup == result.fast_records_per_sec / result.reference_records_per_sec
    assert result.batch_speedup == result.batch_records_per_sec / result.fast_records_per_sec
    assert result.batch_stats_match


def test_run_bench_payload_shape():
    payload = run_bench(
        designs=("ideal",),
        workload="oltp-db2",
        num_records=1200,
        scale=TEST_SCALE,
        repeats=1,
    )
    assert payload["baseline"].startswith("reference")
    (result,) = payload["results"]
    assert result["design"] == "I" and result["stats_match"] is True
    assert result["batch_stats_match"] is True


# --------------------------------------------------------------------- #
# Trace-pipeline bench (``repro bench --traces``)
# --------------------------------------------------------------------- #
def test_run_trace_bench_payload_shape():
    payload = run_trace_bench(
        designs=("rnuca",),
        workload="mix",
        num_records=1500,
        scale=TEST_SCALE,
        repeats=1,
    )
    assert payload["benchmark"] == "trace-pipeline"
    assert payload["scenario"] == "mix:migrate"
    assert payload["events"] > 0
    generation = payload["generation"]
    assert generation["static_records_per_sec"] > 0
    assert generation["dynamic_records_per_sec"] > 0
    persistence = payload["persistence"]
    assert persistence["round_trip_ok"] is True
    assert persistence["binary_save_records_per_sec"] > 0
    assert persistence["binary_load_records_per_sec"] > 0
    assert persistence["binary_bytes"] > 0
    assert "jsonl_bytes" not in persistence  # the legacy format is gone
    (row,) = payload["replay"]
    assert row["design"] == "R"
    assert row["dynamic_records_per_sec"] > 0
    assert row["mmap_records_per_sec"] > 0
    assert row["event_overhead"] > 0
    # The bench doubles as a zero-copy equivalence check.
    assert row["mmap_stats_match"] is True


def test_trace_bench_cli_writes_json(tmp_path, capsys):
    output = tmp_path / "BENCH_trace.json"
    args = [
        "bench", "--traces",
        "--designs", "private",
        "--workload", "mix",
        "--records", "1200",
        "--scale", str(TEST_SCALE),
        "--repeats", "1",
        "--output", str(output),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Trace persistence" in out and "Dynamic replay" in out
    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "trace-pipeline"
    assert payload["records"] == 1200
    assert [row["design"] for row in payload["replay"]] == ["P"]
