"""Tests for ``repro bench`` and the engine benchmark module."""

from __future__ import annotations

import json

from repro.cli import main
from repro.cmp.config import SystemConfig
from repro.sim.bench import bench_design, run_bench
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE

BENCH_ARGS = [
    "bench",
    "--designs", "shared,rnuca",
    "--workload", "mix",
    "--records", "1500",
    "--scale", str(TEST_SCALE),
    "--repeats", "1",
]


def test_bench_cli_writes_json(tmp_path, capsys):
    output = tmp_path / "BENCH_engine.json"
    assert main(BENCH_ARGS + ["--output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "Engine throughput" in out and str(output) in out

    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "trace-engine-records-per-sec"
    assert payload["workload"] == "mix"
    assert payload["records"] == 1500
    assert [r["design"] for r in payload["results"]] == ["S", "R"]
    for result in payload["results"]:
        assert result["fast_records_per_sec"] > 0
        assert result["reference_records_per_sec"] > 0
        assert result["speedup"] > 0
        # Every bench run doubles as an equivalence check.
        assert result["stats_match"] is True


def test_bench_cli_quick_defaults(tmp_path, capsys):
    output = tmp_path / "quick.json"
    args = [
        "bench", "--quick", "--designs", "private",
        "--workload", "mix", "--records", "1200",
        "--scale", str(TEST_SCALE), "--output", str(output),
    ]
    assert main(args) == 0
    payload = json.loads(output.read_text())
    from repro.sim.bench import QUICK_BENCH_REPEATS

    assert payload["repeats"] == QUICK_BENCH_REPEATS  # --quick lowers repeats
    assert payload["results"][0]["design"] == "P"


def test_bench_design_measures_both_engines():
    spec = get_workload("mix")
    config = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE)
    trace = SyntheticTraceGenerator(spec, config, seed=1, scale=TEST_SCALE).generate(1200)
    result = bench_design("R", spec, config, trace, repeats=1)
    assert result.design == "R" and result.design_name == "rnuca"
    assert result.stats_match
    assert result.records == 1200
    assert result.speedup == result.fast_records_per_sec / result.reference_records_per_sec


def test_run_bench_payload_shape():
    payload = run_bench(
        designs=("ideal",),
        workload="oltp-db2",
        num_records=1200,
        scale=TEST_SCALE,
        repeats=1,
    )
    assert payload["baseline"].startswith("reference")
    (result,) = payload["results"]
    assert result["design"] == "I" and result["stats_match"] is True
