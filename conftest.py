"""Tier-1 wall-clock budget: the suite's slow tail cannot silently regrow.

The batch replay kernel bought the suite its <60s target (seed tier 1 ran
~140s); this plugin keeps that purchase enforced.  It accumulates every
setup/call/teardown duration (the same numbers ``--durations=10`` prints
— setup matters most: the session-scoped evaluation grids surface as one
giant fixture setup), and fails the session if the **top-10 total**
exceeds the pinned ceiling — the top-10 sum is what actually bounds wall
clock here, because the long tail is thousands of sub-100ms phases while
regressions concentrate in the handful of shared grids.

The budget only engages on a *standard* tier-1 run:

* no fidelity knobs raising trace lengths (``RNUCA_EVAL_RECORDS`` /
  ``RNUCA_CHARACTERIZATION_RECORDS``) — full-fidelity figure regeneration
  is allowed to be slow;
* benchmark timing disabled (the default; ``--benchmark-enable`` reruns
  every figure multiple rounds on purpose);
* no ``-k``/deselection tricks needed: a partial run can only have a
  *smaller* top-10 total, so engaging there is harmless.
"""

from __future__ import annotations

import os

#: Ceiling (seconds) on the sum of the ten slowest test phases.
#: Measured ~25.6s on one core at pinning time (14.4s of it the shared
#: evaluation-grid fixture); the gap to the ceiling is runner-variance
#: headroom, not room for a new slow fixture.
TIER1_TOP10_BUDGET_S = 40.0

#: Knobs that deliberately trade wall clock for fidelity; any of them set
#: means this is not the standard tier-1 configuration the pin is for.
_FIDELITY_KNOBS = ("RNUCA_EVAL_RECORDS", "RNUCA_CHARACTERIZATION_RECORDS")

_durations: list[float] = []


def _budget_active(config) -> bool:
    if any(os.environ.get(name) for name in _FIDELITY_KNOBS):
        return False
    # --benchmark-enable re-times every figure over multiple rounds.
    if getattr(config.option, "benchmark_enable", False):
        return False
    return True


def pytest_runtest_logreport(report) -> None:
    _durations.append(report.duration)


def pytest_sessionfinish(session, exitstatus) -> None:
    if exitstatus != 0 or not _durations:
        return
    if not _budget_active(session.config):
        return
    top = sorted(_durations, reverse=True)[:10]
    total = sum(top)
    if total > TIER1_TOP10_BUDGET_S:
        lines = ", ".join(f"{d:.2f}s" for d in top)
        print(
            f"\ntier-1 wall-clock budget exceeded: top-10 call durations "
            f"total {total:.2f}s > {TIER1_TOP10_BUDGET_S:.0f}s budget "
            f"(slowest: {lines}).\n"
            "Either a test/fixture got slower (fix it) or the suite "
            "legitimately grew (raise TIER1_TOP10_BUDGET_S in conftest.py "
            "with the new measurement)."
        )
        session.exitstatus = 1
